// Repo-wide atomics entry point (DESIGN.md §8).
//
// All shared-memory synchronization in src/ goes through gravel::atomic<T>,
// gravel::atomic_flag, and gravel::mutex from this header — never raw
// std::atomic / std::mutex (enforced by tools/lint_concurrency.py). Two
// build modes:
//
//   - Normal builds: the gravel names are plain aliases for the std types.
//     Zero cost — same codegen, same layout (bench_fig8_queue_tput guards
//     this). The verify hooks (dataLoad/dataStore/spinYield/choose) compile
//     to nothing / a plain yield.
//
//   - GRAVEL_VERIFY=1 builds: the names resolve to the instrumented shim in
//     src/verify/shim.hpp. Every operation becomes a schedule point under
//     the model checker, loads can observe stale-but-coherent values, and
//     plain payload accesses announced via dataLoad/dataStore are checked
//     for data races. See tests/test_verify.cpp for usage.
//
// House rules this header exists to make checkable:
//   1. every load/store/RMW names its memory_order explicitly (the shim's
//      signatures have no defaulted order arguments);
//   2. spin loops call gravel::verify::spinYield() when they back off, so
//      the model checker can block them instead of replaying empty reads;
//   3. code that hands raw payload memory across a synchronization edge
//      announces the access via dataLoad/dataStore;
//   4. gravel::mutex is capability-bearing (common/annotations.hpp): fields
//      it guards say GRAVEL_GUARDED_BY, and critical sections use
//      gravel::lock_guard — never std::scoped_lock, which clang's thread
//      safety analysis cannot see through.
#pragma once

#include "common/annotations.hpp"

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstring>

namespace gravel::lockprof {

// Lock-contention accounting (DESIGN.md §15): every gravel::mutex
// constructed with a site name — by convention its TSA capability name,
// e.g. "SlotRouter::Shard::mutex" — reports acquisition counts and a Pow2
// wait-time histogram for free whenever lock profiling is enabled. Sites
// are deduplicated by content, so the N shard-mutex instances of one class
// fold into a single row. Unnamed mutexes never touch any of this.
//
// Raw std::atomic on purpose (lint SHIM_HOME): registration runs from
// arbitrary constructors outside any model-checked schedule, and the table
// is process-global — the verify shim must not turn every site update into
// a schedule point.

inline constexpr int kMaxSites = 64;
inline constexpr int kWaitBuckets = 40;  // == Pow2Histogram::kBuckets

/// One named lock site. Counters are relaxed monotonic: a dumper may see
/// them lag each other by one update, which is fine for a profile.
struct SiteStats {
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint64_t> acquisitions{0};
  std::atomic<std::uint64_t> contended{0};
  std::atomic<std::uint64_t> wait_ns_total{0};
  std::atomic<std::uint64_t> wait_hist[kWaitBuckets]{};
};

inline SiteStats* table() noexcept {
  static SiteStats sites[kMaxSites];
  return sites;
}

inline std::atomic<bool>& enabledFlag() noexcept {
  static std::atomic<bool> on{false};
  return on;
}

inline bool enabled() noexcept {
  return enabledFlag().load(std::memory_order_relaxed);
}

inline void setEnabled(bool on) noexcept {
  enabledFlag().store(on, std::memory_order_relaxed);
}

/// Find-or-claim the row for a site name, deduplicating by content so each
/// translation unit's copy of the same literal shares one row. Returns
/// nullptr when the table is full — that mutex then profiles nothing
/// rather than misattributing.
inline SiteStats* registerSite(const char* site) noexcept {
  if (site == nullptr) return nullptr;
  SiteStats* sites = table();
  for (int i = 0; i < kMaxSites; ++i) {
    // pairs-with: lockprof.site
    const char* cur = sites[i].name.load(std::memory_order_acquire);
    if (cur == nullptr) {
      const char* expected = nullptr;
      if (sites[i].name.compare_exchange_strong(
              expected, site,
              // pairs-with: lockprof.site
              std::memory_order_release, std::memory_order_acquire))
        return &sites[i];
      cur = expected;  // lost the claim race; fall through to compare
    }
    if (std::strcmp(cur, site) == 0) return &sites[i];
  }
  return nullptr;
}

inline void recordWait(SiteStats* s, std::uint64_t wait_ns) noexcept {
  s->contended.fetch_add(1, std::memory_order_relaxed);
  s->wait_ns_total.fetch_add(wait_ns, std::memory_order_relaxed);
  int bucket = wait_ns == 0 ? 0 : 64 - std::countl_zero(wait_ns);
  if (bucket >= kWaitBuckets) bucket = kWaitBuckets - 1;
  s->wait_hist[bucket].fetch_add(1, std::memory_order_relaxed);
}

/// Copied-out view of one site for dumpers.
struct SiteSample {
  const char* name = nullptr;
  std::uint64_t acquisitions = 0;
  std::uint64_t contended = 0;
  std::uint64_t wait_ns_total = 0;
  std::uint64_t wait_hist[kWaitBuckets] = {};

  /// Estimated q-quantile of the wait distribution, in ns — the same
  /// bucket interpolation as Pow2Histogram::quantile (common/stats.hpp):
  /// bucket 0 holds {0}, bucket i>=1 covers [2^(i-1), 2^i).
  double waitQuantileNs(double q) const noexcept {
    std::uint64_t total = 0;
    for (int i = 0; i < kWaitBuckets; ++i) total += wait_hist[i];
    if (total == 0) return 0.0;
    q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
    const double target = q * double(total);
    std::uint64_t cum = 0;
    for (int i = 0; i < kWaitBuckets; ++i) {
      if (wait_hist[i] == 0) continue;
      const double before = double(cum);
      cum += wait_hist[i];
      if (double(cum) >= target) {
        const double lo = i == 0 ? 0.0 : double(std::uint64_t{1} << (i - 1));
        const double hi = i == 0 ? 1.0 : double(std::uint64_t{1} << i);
        double frac = (target - before) / double(wait_hist[i]);
        frac = frac < 0.0 ? 0.0 : (frac > 1.0 ? 1.0 : frac);
        return lo + frac * (hi - lo);
      }
    }
    return double(std::uint64_t{1} << (kWaitBuckets - 1));
  }
};

/// Visits every claimed site with a consistent-enough copy. Sites are
/// claimed left to right, so the first empty slot ends the table.
template <typename Fn>
inline void forEachSite(Fn&& fn) {
  SiteStats* sites = table();
  for (int i = 0; i < kMaxSites; ++i) {
    // pairs-with: lockprof.site
    const char* name = sites[i].name.load(std::memory_order_acquire);
    if (name == nullptr) break;
    SiteSample s;
    s.name = name;
    s.acquisitions = sites[i].acquisitions.load(std::memory_order_relaxed);
    s.contended = sites[i].contended.load(std::memory_order_relaxed);
    s.wait_ns_total =
        sites[i].wait_ns_total.load(std::memory_order_relaxed);
    for (int b = 0; b < kWaitBuckets; ++b)
      s.wait_hist[b] = sites[i].wait_hist[b].load(std::memory_order_relaxed);
    fn(s);
  }
}

/// Zeroes every site's counters (names stay claimed) — benches and tests
/// window their measurements with this.
inline void reset() noexcept {
  SiteStats* sites = table();
  for (int i = 0; i < kMaxSites; ++i) {
    sites[i].acquisitions.store(0, std::memory_order_relaxed);
    sites[i].contended.store(0, std::memory_order_relaxed);
    sites[i].wait_ns_total.store(0, std::memory_order_relaxed);
    for (int b = 0; b < kWaitBuckets; ++b)
      sites[i].wait_hist[b].store(0, std::memory_order_relaxed);
  }
}

}  // namespace gravel::lockprof

#if defined(GRAVEL_VERIFY) && GRAVEL_VERIFY

#include "verify/shim.hpp"

#else  // normal builds: straight aliases, no-op hooks

#include <atomic>
#include <mutex>
#include <string>
#include <thread>

namespace gravel {

template <typename T>
using atomic = std::atomic<T>;
using atomic_flag = std::atomic_flag;

/// std::mutex with clang thread-safety capability attributes. lock/unlock
/// are inline forwarders; the attributes exist purely for -Wthread-safety.
///
/// A mutex constructed with a site name (by convention its TSA capability
/// path, e.g. "SlotRouter::Shard::mutex") additionally feeds the lockprof
/// contention table: when lock profiling is enabled, lock() counts the
/// acquisition, tries the uncontended try_lock fast path, and only on a
/// miss reads the clock around the blocking acquire and records the wait
/// into the site's Pow2 histogram. Unnamed mutexes keep exactly one extra
/// predicted branch (site_ == nullptr) over the bare std::mutex; named
/// mutexes with profiling off add one more relaxed load.
class GRAVEL_CAPABILITY("mutex") mutex {
 public:
  mutex() = default;
  explicit mutex(const char* site) : site_(lockprof::registerSite(site)) {}
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock() GRAVEL_ACQUIRE() {
    lockprof::SiteStats* s = site_;
    if (s == nullptr || !lockprof::enabled()) {
      m_.lock();
      return;
    }
    s->acquisitions.fetch_add(1, std::memory_order_relaxed);
    if (m_.try_lock()) return;  // uncontended: no clock reads at all
    const auto t0 = std::chrono::steady_clock::now();
    m_.lock();
    const auto waited = std::chrono::steady_clock::now() - t0;
    lockprof::recordWait(
        s, std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             waited)
                             .count()));
  }
  void unlock() GRAVEL_RELEASE() { m_.unlock(); }

 private:
  std::mutex m_;
  lockprof::SiteStats* site_ = nullptr;
};

namespace verify {

inline constexpr bool kEnabled = false;

inline void dataLoad(const void* /*addr*/) noexcept {}
inline void dataStore(const void* /*addr*/) noexcept {}
inline void spinYield() { std::this_thread::yield(); }
inline int choose(int /*numOptions*/) noexcept { return 0; }
inline void fail(const std::string& /*message*/) noexcept {}

}  // namespace verify
}  // namespace gravel

#endif  // GRAVEL_VERIFY

namespace gravel {

/// RAII critical section over a gravel::mutex — the repo's only lock guard.
/// A scoped capability, so clang's thread safety analysis knows the mutex
/// is held for the guard's lifetime (std::scoped_lock is opaque to it).
/// Works identically over the std-alias and verify-shim mutex.
class GRAVEL_SCOPED_CAPABILITY lock_guard {
 public:
  explicit lock_guard(mutex& m) GRAVEL_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~lock_guard() GRAVEL_RELEASE() { m_.unlock(); }

  lock_guard(const lock_guard&) = delete;
  lock_guard& operator=(const lock_guard&) = delete;

 private:
  mutex& m_;
};

}  // namespace gravel
