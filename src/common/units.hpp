// Size and rate literals used throughout configuration code.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gravel {

inline constexpr std::size_t operator""_KiB(unsigned long long v) {
  return static_cast<std::size_t>(v) * 1024;
}
inline constexpr std::size_t operator""_MiB(unsigned long long v) {
  return static_cast<std::size_t>(v) * 1024 * 1024;
}

/// Converts gigabits/second to bytes/second (network links are quoted in
/// Gb/s; the cost model works in bytes).
constexpr double gbitsToBytesPerSec(double gbits) { return gbits * 1e9 / 8.0; }

}  // namespace gravel
