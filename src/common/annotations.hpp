// Clang Thread Safety Analysis annotations (DESIGN.md §13).
//
// These macros wrap clang's capability attributes so the whole tree's lock
// discipline — which field is guarded by which gravel::mutex, which helper
// requires which lock held, which guard releases what — is stated in the
// type system and checked at compile time with -Wthread-safety. On GCC, on
// pre-attribute clang, or under -DGRAVEL_NO_TSA they expand to nothing, so
// annotated code compiles identically everywhere (the compile_no_tsa ctest
// proves the vanish path; the static-analysis CI job proves the checked
// path with -Wthread-safety -Werror).
//
// Conventions (see DESIGN.md §13 for the full contract):
//   - gravel::mutex is the only GRAVEL_CAPABILITY type in product code;
//     gravel::lock_guard is the only scoped guard. std::scoped_lock is
//     invisible to the analysis and must not be used on a gravel::mutex.
//   - Every non-atomic field written by more than one thread carries
//     GRAVEL_GUARDED_BY(<its mutex>).
//   - Private helpers that assume a caller-held lock say
//     GRAVEL_REQUIRES(<mutex>); public entry points that take a lock the
//     caller must not already hold say GRAVEL_EXCLUDES(<mutex>).
//   - src/verify/ is the one place GRAVEL_NO_THREAD_SAFETY_ANALYSIS is
//     permitted: the controller deliberately juggles locks across threads
//     in ways the static analysis cannot type.
#pragma once

#if defined(__clang__) && !defined(GRAVEL_NO_TSA) && !defined(SWIG)
#define GRAVEL_TSA_ATTR(x) __attribute__((x))
#else
#define GRAVEL_TSA_ATTR(x)  // no-op: GCC / -DGRAVEL_NO_TSA builds
#endif

/// Marks a type as a capability (a lock). `x` is the capability's
/// diagnostic name, e.g. GRAVEL_CAPABILITY("mutex").
#define GRAVEL_CAPABILITY(x) GRAVEL_TSA_ATTR(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define GRAVEL_SCOPED_CAPABILITY GRAVEL_TSA_ATTR(scoped_lockable)

/// Data member may only be read/written while holding capability `x`.
#define GRAVEL_GUARDED_BY(x) GRAVEL_TSA_ATTR(guarded_by(x))

/// Pointer member: the *pointee* is guarded by `x` (the pointer itself may
/// be read freely).
#define GRAVEL_PT_GUARDED_BY(x) GRAVEL_TSA_ATTR(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and does not
/// release them).
#define GRAVEL_REQUIRES(...) \
  GRAVEL_TSA_ATTR(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities and holds them on exit.
#define GRAVEL_ACQUIRE(...) \
  GRAVEL_TSA_ATTR(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (held on entry).
#define GRAVEL_RELEASE(...) \
  GRAVEL_TSA_ATTR(release_capability(__VA_ARGS__))

/// Function may not be called while holding the listed capabilities
/// (anti-deadlock: documents "takes this lock internally").
#define GRAVEL_EXCLUDES(...) GRAVEL_TSA_ATTR(locks_excluded(__VA_ARGS__))

/// Function returns a reference to a capability (lock accessors).
#define GRAVEL_RETURN_CAPABILITY(x) GRAVEL_TSA_ATTR(lock_returned(x))

/// Declares that `x` must be acquired before the annotated mutex.
#define GRAVEL_ACQUIRED_AFTER(...) \
  GRAVEL_TSA_ATTR(acquired_after(__VA_ARGS__))

/// Declares that `x` must be acquired after the annotated mutex.
#define GRAVEL_ACQUIRED_BEFORE(...) \
  GRAVEL_TSA_ATTR(acquired_before(__VA_ARGS__))

/// Escape hatch — permitted only under src/verify/ (enforced by the
/// static-analysis acceptance gate: zero suppressions outside src/verify/).
#define GRAVEL_NO_THREAD_SAFETY_ANALYSIS \
  GRAVEL_TSA_ATTR(no_thread_safety_analysis)
