// ASCII table printer shared by the figure/table benchmark binaries, so every
// bench emits the same aligned "paper artifact" layout.
#pragma once

#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace gravel {

/// Accumulates rows of strings and prints them with per-column alignment.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void addRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Formats a double with `prec` digits after the point.
  static std::string num(double v, int prec = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size());
    auto widen = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size() && i < width.size(); ++i)
        width[i] = std::max(width[i], row[i].size());
    };
    widen(header_);
    for (const auto& row : rows_) widen(row);

    auto emit = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < width.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : std::string{};
        os << (i == 0 ? "" : "  ") << std::left << std::setw(int(width[i]))
           << cell;
      }
      os << '\n';
    };
    emit(header_);
    std::vector<std::string> rule;
    rule.reserve(width.size());
    for (std::size_t w : width) rule.emplace_back(w, '-');
    emit(rule);
    for (const auto& row : rows_) emit(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gravel
