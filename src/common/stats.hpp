// Lightweight instrumentation: counters and running statistics.
//
// The evaluation pipeline never times wall-clock for cluster-scale figures;
// it counts events (atomic RMWs, queue slots, per-destination bytes, remote
// vs. local accesses) during the functional run and feeds those counts to the
// cost model in src/perf. These types are that counting layer.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/atomic.hpp"
#include "common/cacheline.hpp"

namespace gravel {

/// A relaxed atomic counter. Relaxed is sufficient: counters are read only
/// after the threads that bump them have been joined.
///
/// Padded to a full cache line: counters sit next to each other in stats
/// blocks, and an unpadded array of them would put several hot atomics on
/// one line — every add() from a different thread then ping-pongs the line
/// (false sharing on the stats path).
class alignas(kCacheLineSize) Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  atomic<std::uint64_t> value_{0};
};

static_assert(sizeof(Counter) == kCacheLineSize);

/// A counter sharded across cache lines so concurrent writers (aggregator
/// worker threads bumping per-message counts) never contend on one line.
/// Each writer thread hashes to a fixed shard; get() sums all shards. The
/// default acquire/release pair makes a summed read at least as fresh as
/// any write that happened-before it — the property the quiet protocol's
/// slots-processed comparison relies on.
class ShardedCounter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t n = 1,
           std::memory_order order = std::memory_order_release) noexcept {
    shards_[shardIndex()].value.fetch_add(n, order);
  }

  std::uint64_t get(std::memory_order order =
                        std::memory_order_acquire) const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.value.load(order);
    return total;
  }

  void reset() noexcept {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(kCacheLineSize) Shard {
    atomic<std::uint64_t> value{0};
  };

  static std::size_t shardIndex() noexcept {
    // One stable shard per thread; hashing the thread id spreads OS-assigned
    // ids (often sequential, often aligned) across the shard array.
    thread_local const std::size_t shard =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
    return shard;
  }

  Shard shards_[kShards];
};

/// Running mean/min/max/total over a stream of samples (e.g. flushed
/// per-node-queue sizes, which produce Table 5's "average message size").
class RunningStat {
 public:
  void add(double sample) noexcept {
    ++count_;
    sum_ += sample;
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  void merge(const RunningStat& o) noexcept {
    count_ += o.count_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }
  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return count_ ? sum_ / count_ : 0.0; }
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Power-of-two bucketed histogram (bucket i counts samples in
/// [2^i, 2^(i+1))), used for message-size distributions.
class Pow2Histogram {
 public:
  void add(std::uint64_t sample) noexcept {
    int bucket = sample == 0 ? 0 : 64 - std::countl_zero(sample);
    if (bucket >= kBuckets) bucket = kBuckets - 1;
    ++buckets_[bucket];
    ++total_;
  }
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t bucket(int i) const noexcept { return buckets_[i]; }
  static constexpr int kBuckets = 40;

  /// Estimated q-quantile (q in [0,1]): find the bucket where the
  /// cumulative count crosses q*total and interpolate linearly inside it.
  /// Bucket 0 holds exactly {0}; bucket i>=1 covers [2^(i-1), 2^i), so the
  /// estimate is within a factor of 2 of the true quantile — the right
  /// fidelity for "which pipeline stage dominates p99", and the same rule
  /// tools/latency_report.py applies to exported bucket arrays.
  double quantile(double q) const noexcept {
    if (total_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * double(total_);
    std::uint64_t cum = 0;
    for (int i = 0; i < kBuckets; ++i) {
      if (buckets_[i] == 0) continue;
      const double before = double(cum);
      cum += buckets_[i];
      if (double(cum) >= target) {
        const double lo = i == 0 ? 0.0 : double(std::uint64_t{1} << (i - 1));
        const double hi = i == 0 ? 1.0 : double(std::uint64_t{1} << i);
        const double frac = (target - before) / double(buckets_[i]);
        return lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
      }
    }
    return double(std::uint64_t{1} << (kBuckets - 1));
  }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t total_ = 0;
};

/// Named scalar metrics collected from one run, merged across nodes and
/// printed by benches. A plain map keeps this trivially serializable.
class MetricSet {
 public:
  double& operator[](const std::string& key) { return metrics_[key]; }
  double at(const std::string& key) const {
    auto it = metrics_.find(key);
    return it == metrics_.end() ? 0.0 : it->second;
  }
  bool contains(const std::string& key) const {
    return metrics_.count(key) != 0;
  }
  void accumulate(const MetricSet& o) {
    for (const auto& [k, v] : o.metrics_) metrics_[k] += v;
  }
  const std::map<std::string, double>& all() const { return metrics_; }

 private:
  std::map<std::string, double> metrics_;
};

}  // namespace gravel
