// Deterministic fast RNG (xoshiro256**) used by workload generators.
//
// std::mt19937_64 would also work, but xoshiro is much faster for the
// GUPS-style index streams we generate by the hundreds of millions, and its
// tiny state makes per-work-item streams cheap.
#pragma once

#include <cstdint>

namespace gravel {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& word : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      word = x ^ (x >> 31);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() noexcept { return next(); }

  /// Uniform integer in [0, bound). Lemire's multiply-shift rejection-free
  /// approximation is fine here (bias < 2^-32 for bound < 2^32).
  std::uint64_t below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace gravel
