// Bounded exponential backoff for spin loops: a burst of yields first (the
// common case resolves in microseconds), then a sleep that doubles up to a
// cap. A lost wake-up degrades to slow polling instead of a 100%-CPU spin,
// and reset() restores full responsiveness once work reappears.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace gravel {

class Backoff {
 public:
  explicit Backoff(
      std::chrono::microseconds maxSleep = std::chrono::microseconds(1000),
      std::uint32_t spinYields = 64)
      : maxSleep_(maxSleep), spinYields_(spinYields) {}

  /// One wait step: yield for the first `spinYields` calls since reset,
  /// then sleep with exponential ramp (1 us, 2 us, ... maxSleep).
  void wait() {
    if (spins_ < spinYields_) {
      ++spins_;
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(sleep_);
    sleep_ = std::min(sleep_ * 2, maxSleep_);
  }

  /// Call when progress was made so the next stall starts hot again.
  void reset() {
    spins_ = 0;
    sleep_ = std::chrono::microseconds(1);
  }

 private:
  std::chrono::microseconds maxSleep_;
  std::uint32_t spinYields_;
  std::uint32_t spins_ = 0;
  std::chrono::microseconds sleep_{1};
};

}  // namespace gravel
