// Cache-line utilities.
//
// The paper's Figure 8 discussion hinges on cache-line economics: the
// CPU-only SPSC/MPMC queues pad indices and payloads to whole cache lines to
// avoid false sharing, which costs three line transfers for an 8-byte
// message, while Gravel's slotted layout packs a work-group's messages
// densely into shared lines.
#pragma once

#include <cstddef>
#include <new>

namespace gravel {

// std::hardware_destructive_interference_size is 64 on every x86-64 target we
// support; pin it so struct layouts are identical across compilers.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps a value so that it occupies (at least) one full cache line.
/// Used by the CPU-baseline queues for indices and per-slot payloads.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{};

  CacheAligned() = default;
  explicit CacheAligned(const T& v) : value(v) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

/// Number of cache lines touched by an object of `bytes` bytes starting at a
/// line boundary. Used by tests that check the padded-vs-packed accounting
/// the paper gives in §4.3.
constexpr std::size_t linesFor(std::size_t bytes) {
  return (bytes + kCacheLineSize - 1) / kCacheLineSize;
}

}  // namespace gravel
