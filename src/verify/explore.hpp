// Schedule exploration driver for the verification layer (DESIGN.md §8).
//
// verify::explore() runs a bounded protocol test (a set of thread bodies
// plus an invariant) many times under the Controller, steering every
// scheduling / reads-from / adversary decision:
//
//   - kDfs: depth-first enumeration of the decision tree with *preemption
//     bounding* (CHESS): at a schedule point where the current thread is
//     still runnable, choice 0 keeps it running; any other choice is a
//     preemption and is only explored while the run's preemption count is
//     under the bound. Stale-read and adversary branches are enumerated
//     fully. If the tree is exhausted under the caps, Result::exhausted is
//     true — the test proved the property for the bounded configuration.
//
//   - kPct: probabilistic concurrency testing — random thread priorities
//     with `pctDepth - 1` priority-change points at random steps, plus
//     uniformly random reads-from/adversary choices; one run per seed.
//     Cheap high-coverage smoke for configs too big to exhaust.
//
// Every run's choice stream is recorded. On a violation the stream plus the
// step-by-step trace is returned (and written to $GRAVEL_VERIFY_TRACE_DIR if
// set — CI uploads these as artifacts). Re-running the same test binary with
//
//   GRAVEL_VERIFY_REPLAY_TEST=<opts.name> GRAVEL_VERIFY_REPLAY=<c0,c1,...>
//
// replays exactly that interleaving, trace on, for debugging.
#pragma once

#include <array>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "verify/controller.hpp"

namespace gravel::verify {

enum class Strategy : std::uint8_t { kDfs, kPct };

struct ExploreOptions {
  std::string name;  ///< test id: trace file name, replay selector
  Strategy strategy = Strategy::kDfs;
  long maxSchedules = 200000;  ///< DFS cap; exhausted=false if hit
  long maxStepsPerRun = 20000;
  int preemptionBound = 2;
  int pctSeeds = 200;  ///< number of randomized runs for kPct
  int pctDepth = 3;    ///< PCT "d": bug depth, d-1 priority changes
  Mutation mutation;   ///< optional single-site memory-order weakening
};

struct ExploreResult {
  bool ok = true;
  bool exhausted = false;  ///< DFS fully enumerated under the caps
  long schedules = 0;
  std::string violation;
  std::vector<int> choices;        ///< failing run's decision stream
  std::vector<std::string> trace;  ///< failing run's step-by-step log
  std::vector<Site> sites;         ///< ordered memory-order sites observed

  /// Human-readable failure report (gtest prints this on EXPECT failures).
  std::string report(const std::string& name) const {
    std::ostringstream os;
    os << "[" << name << "] " << (ok ? "ok" : "VIOLATION") << " after "
       << schedules << " schedules";
    if (!ok) {
      os << "\n  " << violation << "\n  replay: GRAVEL_VERIFY_REPLAY_TEST="
         << name << " GRAVEL_VERIFY_REPLAY=";
      for (std::size_t i = 0; i < choices.size(); ++i)
        os << (i ? "," : "") << choices[i];
      os << "\n  trace (" << trace.size() << " steps):";
      for (const std::string& line : trace) os << "\n    " << line;
    }
    return os.str();
  }
};

/// One schedule's worth of a protocol test, built fresh per run by the
/// factory passed to explore() — every run must start from virgin state.
struct RunSpec {
  /// Thread bodies; the controller serializes and schedules them.
  std::vector<std::function<void()>> threads;
  /// Runs after every model step on the stepping thread. Observe state only
  /// via atomic<T>::peek()/plain reads; report breaches via verify::fail().
  std::function<void()> invariant;
  /// Runs on the main thread after all threads joined (skipped if the run
  /// already failed). Returns an error message, or "" when the end state is
  /// good — e.g. "every pushed message popped exactly once".
  std::function<std::string()> finalCheck;
};

namespace detail {

/// Deterministic 64-bit PRNG (splitmix64) — keeps PCT runs reproducible
/// from their seed alone.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : x_(seed + 0x9e3779b97f4a7c15ull) {}
  std::uint64_t next() {
    std::uint64_t z = (x_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  int below(int n) { return int(next() % std::uint64_t(n)); }

 private:
  std::uint64_t x_;
};

/// One DFS decision node: how many options existed, which we took, and
/// whether advancing past 0 costs a preemption.
struct DfsNode {
  int num = 0;
  int chosen = 0;
  bool preemptive = false;  ///< schedule point with current thread runnable
  int preemptionsBefore = 0;
};

/// Runs one RunSpec to completion under `controller` (threads joined, final
/// check applied); returns when the run is over.
inline void runOnce(Controller& controller, const RunSpec& spec) {
  controller.beginRun(int(spec.threads.size()));
  std::vector<std::thread> workers;
  workers.reserve(spec.threads.size());
  for (std::size_t i = 0; i < spec.threads.size(); ++i) {
    workers.emplace_back([&controller, &spec, i] {
      controller.registerAndPark(int(i));
      spec.threads[i]();
      controller.threadDone(int(i));
    });
  }
  controller.start();
  for (std::thread& w : workers) w.join();
  if (!controller.failed() && spec.finalCheck) {
    const std::string msg = spec.finalCheck();
    if (!msg.empty()) controller.fail("final check: " + msg);
  }
  controller.endRun();
}

inline void dumpTrace(const ExploreOptions& opts, const ExploreResult& r) {
  const char* dir = std::getenv("GRAVEL_VERIFY_TRACE_DIR");
  if (!dir || !*dir) return;
  std::ofstream out(std::string(dir) + "/" + opts.name + ".trace.txt");
  if (!out) return;
  out << "test: " << opts.name << "\n";
  if (opts.mutation.active())
    out << "mutation: " << opts.mutation.file << ":" << opts.mutation.line
        << " -> relaxed\n";
  out << "violation: " << r.violation << "\nchoices: ";
  for (std::size_t i = 0; i < r.choices.size(); ++i)
    out << (i ? "," : "") << r.choices[i];
  out << "\nreplay: GRAVEL_VERIFY_REPLAY_TEST=" << opts.name
      << " GRAVEL_VERIFY_REPLAY=";
  for (std::size_t i = 0; i < r.choices.size(); ++i)
    out << (i ? "," : "") << r.choices[i];
  out << "\ntrace:\n";
  for (const std::string& line : r.trace) out << "  " << line << "\n";
}

inline void captureFailure(const ExploreOptions& opts, Controller& c,
                           ExploreResult& r) {
  r.ok = false;
  r.violation = c.violation();
  r.choices = c.choices();
  r.trace = c.trace();
  dumpTrace(opts, r);
}

/// Replay mode: GRAVEL_VERIFY_REPLAY_TEST selects the explore() call,
/// GRAVEL_VERIFY_REPLAY carries the comma-separated choice stream.
inline bool replayRequested(const ExploreOptions& opts,
                            std::vector<int>& script) {
  const char* test = std::getenv("GRAVEL_VERIFY_REPLAY_TEST");
  const char* raw = std::getenv("GRAVEL_VERIFY_REPLAY");
  if (!test || !raw || opts.name != test) return false;
  script.clear();
  std::istringstream in(raw);
  std::string tok;
  while (std::getline(in, tok, ','))
    if (!tok.empty()) script.push_back(std::atoi(tok.c_str()));
  return true;
}

}  // namespace detail

/// Explore schedules of the protocol test built by `makeRun` under `opts`.
/// The factory is invoked before every run so each schedule starts from
/// virgin state.
inline ExploreResult explore(const ExploreOptions& opts,
                             const std::function<RunSpec()>& makeRun) {
  ExploreResult result;

  // -- replay mode ---------------------------------------------------------
  std::vector<int> script;
  if (detail::replayRequested(opts, script)) {
    const RunSpec spec = makeRun();
    std::size_t pos = 0;
    Controller::Options copts;
    copts.invariant = spec.invariant;
    copts.maxSteps = opts.maxStepsPerRun;
    copts.mutation = opts.mutation;
    copts.chooser = [&](ChoiceKind, int num, const int*, bool) {
      const int c = pos < script.size() ? script[pos++] : 0;
      return c < num ? c : 0;
    };
    Controller c(copts);
    detail::runOnce(c, spec);
    result.schedules = 1;
    result.sites = c.sites();
    if (c.failed()) detail::captureFailure(opts, c, result);
    return result;
  }

  // -- PCT -----------------------------------------------------------------
  if (opts.strategy == Strategy::kPct) {
    for (int seed = 0; seed < opts.pctSeeds; ++seed) {
      detail::Rng rng(std::uint64_t(seed) * 0x100000001b3ull + 0xcbf29ce4ull);
      // Distinct random priorities; change points lower the running thread.
      std::array<int, kMaxThreads> prio{};
      for (int i = 0; i < kMaxThreads; ++i) prio[i] = 100 + rng.below(1000);
      std::vector<long> changeAt;
      for (int i = 0; i + 1 < opts.pctDepth; ++i)
        changeAt.push_back(rng.below(int(opts.maxStepsPerRun / 4) + 1));
      long schedSteps = 0;
      int nextLow = 50;

      const RunSpec spec = makeRun();
      Controller::Options copts;
      copts.invariant = spec.invariant;
      copts.maxSteps = opts.maxStepsPerRun;
      copts.mutation = opts.mutation;
      copts.chooser = [&](ChoiceKind kind, int num, const int* tids,
                          bool) -> int {
        if (kind != ChoiceKind::kSchedule) return rng.below(num);
        ++schedSteps;
        for (long at : changeAt)
          if (at == schedSteps && tids && num > 0)
            prio[tids[0]] = --nextLow;  // demote whoever would run next
        int best = 0;
        for (int i = 1; i < num; ++i)
          if (prio[tids[i]] > prio[tids[best]]) best = i;
        return best;
      };
      Controller c(copts);
      detail::runOnce(c, spec);
      ++result.schedules;
      for (const Site& s : c.sites()) {
        bool known = false;
        for (const Site& k : result.sites)
          if (k == s) known = true;
        if (!known) result.sites.push_back(s);
      }
      if (c.failed()) {
        detail::captureFailure(opts, c, result);
        return result;
      }
    }
    return result;
  }

  // -- DFS with preemption bounding ---------------------------------------
  std::vector<detail::DfsNode> stack;
  bool more = true;
  while (more && result.schedules < opts.maxSchedules) {
    const RunSpec spec = makeRun();
    std::size_t pos = 0;
    int preemptions = 0;
    Controller::Options copts;
    copts.invariant = spec.invariant;
    copts.maxSteps = opts.maxStepsPerRun;
    copts.mutation = opts.mutation;
    copts.chooser = [&](ChoiceKind kind, int num, const int*,
                        bool currentRunnable) -> int {
      const bool preemptive =
          kind == ChoiceKind::kSchedule && currentRunnable;
      if (pos < stack.size()) {
        detail::DfsNode& n = stack[pos];
        if (n.num != num) {
          // Decision-tree shape diverged from the recorded prefix — the
          // test is nondeterministic beyond the controller's choices.
          Controller::current()
              ? Controller::current()->fail(
                    "nondeterministic test: decision arity changed on replayed"
                    " prefix (avoid time/rand in model tests)")
              : (void)0;
          ++pos;
          return 0;
        }
        const int c = n.chosen;
        if (preemptive && c > 0) ++preemptions;
        ++pos;
        return c;
      }
      stack.push_back({num, 0, preemptive, preemptions});
      ++pos;
      return 0;
    };
    Controller c(copts);
    detail::runOnce(c, spec);
    ++result.schedules;
    for (const Site& s : c.sites()) {
      bool known = false;
      for (const Site& k : result.sites)
        if (k == s) known = true;
      if (!known) result.sites.push_back(s);
    }
    if (c.failed()) {
      detail::captureFailure(opts, c, result);
      return result;
    }

    // Backtrack: bump the deepest node that still has an unexplored,
    // preemption-budget-respecting branch; drop everything below it.
    more = false;
    while (!stack.empty()) {
      detail::DfsNode& n = stack.back();
      const bool budgetOk =
          !n.preemptive || n.preemptionsBefore < opts.preemptionBound;
      if (n.chosen + 1 < n.num && budgetOk) {
        ++n.chosen;
        more = true;
        break;
      }
      stack.pop_back();
    }
  }
  result.exhausted = !more;
  return result;
}

}  // namespace gravel::verify
