// Schedule controller for the concurrency verification layer (DESIGN.md §8).
//
// Under GRAVEL_VERIFY=1, every load/store/RMW on a gravel::atomic<T>, every
// gravel::mutex lock/unlock, and every payload access the queues route
// through gravel::verify::dataLoad/dataStore becomes a *schedule point*: the
// running thread reports the access here, the controller picks which thread
// runs next (DFS over yield points, PCT priorities, or a replayed choice
// stream), and the access executes against an operational weak-memory model
// instead of raw hardware:
//
//   - each atomic location keeps its full modification order (a store
//     history); a load may read any store that coherence and happens-before
//     leave eligible, and *which* one is a recorded branch point — this is
//     what makes an acquire->relaxed weakening observable as a stale read;
//   - release stores carry the storer's vector clock; acquire loads that
//     read them join it (release sequences survive RMWs), so happens-before
//     is tracked exactly;
//   - plain payload accesses are checked FastTrack-style against that
//     happens-before relation: an unordered write/read pair is a data race
//     and fails the run with a replayable trace.
//
// Threads execute one at a time (token passing over semaphores), so the
// *real* memory stays sequentially consistent; weak behaviours are simulated
// through the store history. On a violation the controller aborts the
// exploration run and flips every instrumented operation into passthrough
// mode so the threads can drain and join on the real (SC) state.
//
// The controller is test-machinery: it is only ever active inside
// gravel::verify::explore() (see explore.hpp). Outside a run — or in normal
// builds, where common/atomic.hpp aliases the shim away — none of this code
// is reachable from product binaries.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <semaphore>
#include <source_location>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

namespace gravel::verify {

/// Upper bound on threads in one modeled run (bounded protocol tests use
/// 2-4; the vector clocks are fixed-size arrays sized by this).
inline constexpr int kMaxThreads = 8;

/// What kind of decision a chooser is being asked to make.
enum class ChoiceKind : std::uint8_t {
  kSchedule,   ///< which runnable thread executes the next step
  kReadsFrom,  ///< which store in the history a load reads (0 = newest)
  kAdversary,  ///< test-driven choice (verify::choose), e.g. drop/dup a batch
};

/// Memory-order site identity, keyed by the *call site* of the shim method
/// (std::source_location of the caller). The mutation self-test enumerates
/// these and weakens them one at a time.
struct Site {
  std::string file;  ///< basename of the source file
  unsigned line = 0;
  std::string order;  ///< "acquire", "release", "acq_rel", "seq_cst"

  friend bool operator<(const Site& a, const Site& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.order < b.order;
  }
  friend bool operator==(const Site& a, const Site& b) {
    return a.file == b.file && a.line == b.line && a.order == b.order;
  }
};

/// A single-site memory-order weakening: the access at file:line executes
/// with memory_order_relaxed regardless of what the source says.
struct Mutation {
  std::string file;  ///< basename, e.g. "gravel_queue.hpp"
  unsigned line = 0;

  bool active() const noexcept { return line != 0; }
};

namespace detail {

inline std::string basenameOf(const char* path) {
  const std::string s(path ? path : "");
  const std::size_t k = s.find_last_of('/');
  return k == std::string::npos ? s : s.substr(k + 1);
}

inline const char* orderName(std::memory_order mo) noexcept {
  switch (mo) {
    case std::memory_order_relaxed: return "relaxed";
    case std::memory_order_consume: return "consume";
    case std::memory_order_acquire: return "acquire";
    case std::memory_order_release: return "release";
    case std::memory_order_acq_rel: return "acq_rel";
    case std::memory_order_seq_cst: return "seq_cst";
  }
  return "?";
}

inline bool acquiring(std::memory_order mo) noexcept {
  return mo == std::memory_order_acquire || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst || mo == std::memory_order_consume;
}

inline bool releasing(std::memory_order mo) noexcept {
  return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}

}  // namespace detail

/// Fixed-size vector clock over the run's threads.
struct VectorClock {
  std::array<std::uint32_t, kMaxThreads> c{};

  void join(const VectorClock& o) noexcept {
    for (int i = 0; i < kMaxThreads; ++i) c[i] = std::max(c[i], o.c[i]);
  }
  /// this happens-before-or-equals o (componentwise <=).
  bool leq(const VectorClock& o) const noexcept {
    for (int i = 0; i < kMaxThreads; ++i)
      if (c[i] > o.c[i]) return false;
    return true;
  }
};

/// Raised internally never: violations abort via flag, not exceptions, so
/// instrumented ops stay safely callable from noexcept contexts.
class Controller {
 public:
  /// Decision callback. `tids` is non-null (length `num`) for kSchedule
  /// choices and lists the candidate thread ids, candidate 0 being the
  /// currently running thread when it is still runnable.
  using Chooser = std::function<int(ChoiceKind, int num, const int* tids,
                                    bool currentRunnable)>;

  struct Options {
    Chooser chooser;
    std::function<void()> invariant;  ///< run after every step (may fail())
    long maxSteps = 100000;           ///< per-run step budget (livelock stop)
    Mutation mutation;                ///< single-site order weakening
    bool traceSteps = true;           ///< record a per-step text trace
  };

  explicit Controller(Options opts) : opts_(std::move(opts)) {}

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  // -- global registration --------------------------------------------------

  static Controller*& activeSlot() noexcept {
    static Controller* active = nullptr;
    return active;
  }
  /// The controller managing the current run, or nullptr outside runs.
  static Controller* active() noexcept { return activeSlot(); }

  static int& tlsTid() noexcept {
    thread_local int tid = -1;
    return tid;
  }

  /// The controller if the *calling thread* is one of the managed threads
  /// and the run is still exploring (not aborted into passthrough). Also
  /// null while an invariant callback runs: invariant code reads the real
  /// (SC) backing state directly instead of creating schedule points.
  static Controller* current() noexcept {
    Controller* c = active();
    if (!c || tlsTid() < 0) return nullptr;
    if (c->aborted_.load(std::memory_order_relaxed)) return nullptr;
    if (c->inInvariant_) return nullptr;
    return c;
  }

  // -- run lifecycle (driven by explore.hpp on the main thread) -------------

  void beginRun(int threadCount) {
    threadCount_ = threadCount;
    for (int i = 0; i < threadCount_; ++i) {
      ThreadState& t = threads_[i];
      t.clock = VectorClock{};
      t.clock.c[i] = 1;
      t.finished = t.spinBlocked = t.freshOnly = false;
      t.blockedOn = nullptr;
      t.obs.clear();
    }
    atomics_.clear();
    datas_.clear();
    mutexes_.clear();
    steps_ = 0;
    trace_.clear();
    choices_.clear();
    violation_.clear();
    aborted_.store(false, std::memory_order_relaxed);
    started_ = false;
    current_ = 0;
    activeSlot() = this;
  }

  /// Worker threads park here until the scheduler grants them the token.
  void registerAndPark(int tid) {
    tlsTid() = tid;
    threads_[tid].sem.acquire();
  }

  /// Called by the main thread once all workers are parked: hands the token
  /// to the first scheduled thread.
  void start() {
    started_ = true;
    std::array<int, kMaxThreads> tids;
    int n = 0;
    for (int i = 0; i < threadCount_; ++i) tids[n++] = i;
    const int pick =
        n > 1 ? choose(ChoiceKind::kSchedule, n, tids.data(), false) : 0;
    current_ = tids[pick];
    threads_[current_].sem.release();
  }

  /// Worker's final act: mark finished and hand the token onward.
  void threadDone(int tid) {
    if (aborted_.load(std::memory_order_relaxed)) {
      tlsTid() = -1;
      return;
    }
    threads_[tid].finished = true;
    scheduleNext(/*selfRunnable=*/false);
    tlsTid() = -1;
  }

  void endRun() { activeSlot() = nullptr; }

  bool failed() const noexcept { return !violation_.empty(); }
  const std::string& violation() const noexcept { return violation_; }
  const std::vector<std::string>& trace() const noexcept { return trace_; }
  const std::vector<int>& choices() const noexcept { return choices_; }
  const std::vector<Site>& sites() const noexcept { return sites_; }
  long steps() const noexcept { return steps_; }

  // -- model: atomics -------------------------------------------------------

  std::uint64_t modelLoad(const void* addr, std::memory_order mo,
                          std::uint64_t liveValue,
                          const std::source_location& loc) {
    mo = effectiveOrder(mo, loc);
    step();
    AtomicLoc& a = location(addr, liveValue, loc);
    ThreadState& t = threads_[tlsTid()];
    scheduleNext(true);
    if (aborted()) return liveValue;

    // Eligible stores: at or after both this thread's coherence floor and
    // the newest store that happens-before the load.
    const int n = int(a.history.size());
    int lo = coherenceFloor(t, addr);
    for (int j = n - 1; j > lo; --j) {
      if (a.history[std::size_t(j)].storeClock.leq(t.clock)) {
        lo = j;
        break;
      }
    }
    int idx = n - 1;
    const int options = n - lo;
    if (options > 1 && !t.freshOnly) {
      // Choice 0 = newest (the SC behaviour explored first).
      idx = (n - 1) - choose(ChoiceKind::kReadsFrom, options, nullptr, false);
      if (aborted()) return liveValue;
    }
    const Store& st = a.history[std::size_t(idx)];
    t.obs[addr] = idx;
    if (detail::acquiring(mo) && st.hasSync) t.clock.join(st.syncClock);
    record(loc, "load", a.name, mo, st.value,
           options > 1 ? (n - 1) - idx : -1);
    checkInvariant();
    return st.value;
  }

  void modelStore(const void* addr, std::uint64_t value, std::memory_order mo,
                  std::uint64_t liveValue, const std::source_location& loc) {
    mo = effectiveOrder(mo, loc);
    step();
    AtomicLoc& a = location(addr, liveValue, loc);
    scheduleNext(true);
    if (aborted()) return;
    pushStore(a, addr, value, mo, /*rmw=*/false);
    record(loc, "store", a.name, mo, value, -1);
    wakeSpinners();
    checkInvariant();
  }

  std::uint64_t modelRmw(const void* addr,
                         const std::function<std::uint64_t(std::uint64_t)>& f,
                         std::memory_order mo, std::uint64_t liveValue,
                         const std::source_location& loc) {
    mo = effectiveOrder(mo, loc);
    step();
    AtomicLoc& a = location(addr, liveValue, loc);
    ThreadState& t = threads_[tlsTid()];
    scheduleNext(true);
    if (aborted()) return liveValue;
    // An RMW reads the last store in modification order.
    const Store& latest = a.history.back();
    const std::uint64_t old = latest.value;
    if (detail::acquiring(mo) && latest.hasSync) t.clock.join(latest.syncClock);
    pushStore(a, addr, f(old), mo, /*rmw=*/true);
    record(loc, "rmw", a.name, mo, old, -1);
    wakeSpinners();
    checkInvariant();
    return old;
  }

  /// Returns success; updates `expected` on failure. A failed CAS reads the
  /// latest store (no stale branching — keeps the state space bounded).
  bool modelCas(const void* addr, std::uint64_t& expected,
                std::uint64_t desired, std::memory_order success,
                std::memory_order failure, std::uint64_t liveValue,
                const std::source_location& loc) {
    success = effectiveOrder(success, loc);
    failure = effectiveOrder(failure, loc);
    step();
    AtomicLoc& a = location(addr, liveValue, loc);
    ThreadState& t = threads_[tlsTid()];
    scheduleNext(true);
    if (aborted()) return false;
    const Store& latest = a.history.back();
    const std::uint64_t old = latest.value;
    if (old == expected) {
      if (detail::acquiring(success) && latest.hasSync)
        t.clock.join(latest.syncClock);
      pushStore(a, addr, desired, success, /*rmw=*/true);
      record(loc, "cas-hit", a.name, success, desired, -1);
      wakeSpinners();
      checkInvariant();
      return true;
    }
    if (detail::acquiring(failure) && latest.hasSync)
      t.clock.join(latest.syncClock);
    t.obs[addr] = int(a.history.size()) - 1;
    expected = old;
    record(loc, "cas-miss", a.name, failure, old, -1);
    checkInvariant();
    return false;
  }

  // -- model: plain (non-atomic) payload accesses ---------------------------

  void modelData(const void* addr, bool isWrite,
                 const std::source_location& loc) {
    step();
    ThreadState& t = threads_[tlsTid()];
    scheduleNext(true);
    if (aborted()) return;
    DataLoc& d = datas_[addr];
    tick(t);
    if (isWrite) {
      if (!d.writeClock.leq(t.clock) || !d.readsClock.leq(t.clock)) {
        fail("data race: unsynchronized write at " + where(loc) +
             " conflicts with " + d.lastSite);
        return;
      }
      d.writeClock = t.clock;
      d.readsClock = VectorClock{};
      d.lastSite = where(loc);
    } else {
      if (!d.writeClock.leq(t.clock)) {
        fail("data race: unsynchronized read at " + where(loc) +
             " conflicts with write at " + d.lastSite);
        return;
      }
      d.readsClock.c[tlsTid()] =
          std::max(d.readsClock.c[tlsTid()], t.clock.c[tlsTid()]);
      d.lastSite = where(loc);
    }
    record(loc, isWrite ? "data-store" : "data-load", dataName(addr),
           std::memory_order_relaxed, 0, -1);
    checkInvariant();
  }

  // -- model: mutexes -------------------------------------------------------

  /// Model bookkeeping for gravel::mutex::lock(). Returns after the model
  /// grants the lock; the shim then takes the real mutex (uncontended, since
  /// execution is serialized).
  void modelLock(const void* addr, const std::source_location& loc) {
    step();
    scheduleNext(true);
    if (aborted()) return;
    MutexState& m = mutexes_[addr];
    ThreadState& t = threads_[tlsTid()];
    while (m.held) {
      t.blockedOn = addr;
      scheduleNext(false);
      if (aborted()) return;
    }
    m.held = true;
    m.owner = tlsTid();
    t.clock.join(m.releaseClock);
    record(loc, "lock", mutexName(addr), std::memory_order_acquire, 0, -1);
    checkInvariant();
  }

  void modelUnlock(const void* addr, const std::source_location& loc) {
    step();
    scheduleNext(true);
    if (aborted()) return;
    MutexState& m = mutexes_[addr];
    ThreadState& t = threads_[tlsTid()];
    tick(t);
    m.releaseClock = t.clock;
    m.held = false;
    for (int i = 0; i < threadCount_; ++i)
      if (threads_[i].blockedOn == addr) threads_[i].blockedOn = nullptr;
    record(loc, "unlock", mutexName(addr), std::memory_order_release, 0, -1);
    checkInvariant();
  }

  // -- model: spin loops and test hooks -------------------------------------

  /// A failed spin-loop iteration: block until any store/RMW lands, so DFS
  /// never enumerates empty re-read schedules. If the whole system would
  /// deadlock on spinners, they are woken in fresh-only mode (loads must
  /// read the newest store — the model's "stores become visible in finite
  /// time" guarantee); a spinner that still makes no progress then is a
  /// genuine protocol deadlock.
  void modelSpin() {
    step();
    ThreadState& t = threads_[tlsTid()];
    t.freshOnly = false;
    t.spinBlocked = true;
    scheduleNext(false);
  }

  /// Test-driven adversary branch point (drop/dup/reorder decisions).
  int modelChoose(int numOptions, const std::source_location& loc) {
    step();
    if (aborted() || numOptions <= 1) return 0;
    const int c = choose(ChoiceKind::kAdversary, numOptions, nullptr, false);
    record(loc, "choose", "adversary", std::memory_order_relaxed,
           std::uint64_t(c), -1);
    return c;
  }

  /// Explicit violation from test code or invariants.
  void fail(const std::string& message) {
    if (!violation_.empty()) {
      abort_();
      return;
    }
    violation_ = message;
    if (opts_.traceSteps)
      trace_.push_back("!! violation: " + message);
    abort_();
  }

 private:
  struct Store {
    std::uint64_t value = 0;
    VectorClock storeClock;  ///< storer's full clock (HB eligibility)
    VectorClock syncClock;   ///< release clock (acquire loads join this)
    bool hasSync = false;
  };
  struct AtomicLoc {
    std::vector<Store> history;  ///< modification order
    std::string name;
  };
  struct DataLoc {
    VectorClock writeClock;
    VectorClock readsClock;  ///< per-thread epochs of unordered-after reads
    std::string lastSite = "(init)";
  };
  struct MutexState {
    bool held = false;
    int owner = -1;
    VectorClock releaseClock;
  };
  struct ThreadState {
    VectorClock clock;
    std::counting_semaphore<> sem{0};
    bool finished = false;
    bool spinBlocked = false;
    bool freshOnly = false;        ///< next loads must read the newest store
    const void* blockedOn = nullptr;  ///< mutex address when lock-blocked
    std::unordered_map<const void*, int> obs;  ///< coherence floor per loc
  };

  bool aborted() const noexcept {
    return aborted_.load(std::memory_order_relaxed);
  }

  void abort_() {
    aborted_.store(true, std::memory_order_relaxed);
    // Wake everyone; they resume in passthrough mode and drain on the real
    // (sequentially consistent) state.
    for (int i = 0; i < threadCount_; ++i) threads_[i].sem.release();
  }

  void step() {
    if (aborted()) return;
    if (++steps_ > opts_.maxSteps)
      fail("step budget exceeded (livelock or schedule explosion): " +
           std::to_string(opts_.maxSteps) + " steps");
  }

  void tick(ThreadState& t) noexcept { ++t.clock.c[tlsTid()]; }

  int coherenceFloor(ThreadState& t, const void* addr) {
    auto it = t.obs.find(addr);
    return it == t.obs.end() ? 0 : it->second;
  }

  AtomicLoc& location(const void* addr, std::uint64_t liveValue,
                      const std::source_location& loc) {
    auto it = atomics_.find(addr);
    if (it != atomics_.end()) return it->second;
    AtomicLoc& a = atomics_[addr];
    a.name = "A" + std::to_string(atomics_.size() - 1) + "(" +
             detail::basenameOf(loc.file_name()) + ":" +
             std::to_string(loc.line()) + ")";
    // Implicit initial store: happens-before everything (construction
    // precedes thread start), carries full synchronization.
    Store init;
    init.value = liveValue;
    init.hasSync = true;
    a.history.push_back(init);
    return a;
  }

  void pushStore(AtomicLoc& a, const void* addr, std::uint64_t value,
                 std::memory_order mo, bool rmw) {
    ThreadState& t = threads_[tlsTid()];
    tick(t);
    Store s;
    s.value = value;
    s.storeClock = t.clock;
    if (detail::releasing(mo)) {
      s.syncClock = t.clock;
      s.hasSync = true;
    }
    if (rmw) {
      // RMWs continue a release sequence headed by an earlier release store.
      const Store& prev = a.history.back();
      if (prev.hasSync) {
        s.syncClock.join(prev.syncClock);
        s.hasSync = true;
      }
    }
    a.history.push_back(s);
    t.obs[addr] = int(a.history.size()) - 1;
  }

  void wakeSpinners() {
    for (int i = 0; i < threadCount_; ++i)
      if (i != tlsTid()) threads_[i].spinBlocked = false;
  }

  std::string dataName(const void* addr) {
    std::ostringstream os;
    os << "D@" << addr;
    return os.str();
  }
  std::string mutexName(const void* addr) {
    std::ostringstream os;
    os << "M@" << addr;
    return os.str();
  }

  static std::string where(const std::source_location& loc) {
    return detail::basenameOf(loc.file_name()) + ":" +
           std::to_string(loc.line());
  }

  std::memory_order effectiveOrder(std::memory_order mo,
                                   const std::source_location& loc) {
    if (mo != std::memory_order_relaxed) {
      Site s{detail::basenameOf(loc.file_name()), loc.line(),
             detail::orderName(mo)};
      bool known = false;
      for (const Site& k : sites_)
        if (k == s) {
          known = true;
          break;
        }
      if (!known) sites_.push_back(s);
      if (opts_.mutation.active() && s.file == opts_.mutation.file &&
          s.line == opts_.mutation.line)
        return std::memory_order_relaxed;
    }
    return mo;
  }

  int choose(ChoiceKind kind, int num, const int* tids, bool currentRunnable) {
    const int c = opts_.chooser(kind, num, tids, currentRunnable);
    choices_.push_back(c);
    return c;
  }

  /// The scheduling decision at a yield point. `selfRunnable` is false when
  /// the caller is blocking (spin wait, mutex wait, thread exit).
  void scheduleNext(bool selfRunnable) {
    if (aborted()) return;
    const int self = tlsTid();
    std::array<int, kMaxThreads> tids;
    int n = 0;
    if (selfRunnable) tids[n++] = self;  // candidate 0 = keep running
    auto runnable = [&](int i) {
      const ThreadState& t = threads_[i];
      return !t.finished && !t.spinBlocked && t.blockedOn == nullptr;
    };
    for (int i = 0; i < threadCount_; ++i)
      if (i != self && runnable(i)) tids[n++] = i;
    if (n == 0) {
      // Everyone is blocked or done. Spinners get one fresh-only wake (the
      // eventual-visibility rule); if none exist this is a real deadlock.
      // The wake is NOT a recorded choice: it picks round-robin starting
      // after the thread that just blocked. A choice here would let DFS
      // descend into no-progress spin storms (every branch re-runs a read-
      // only loop body against unchanged state), and handing the token back
      // to the blocker is exactly such a storm. All woken spinners become
      // runnable, so ordinary (preemption-bounded) schedule points after
      // this one still interleave them.
      bool wokeSpinner = false;
      for (int k = 1; k <= threadCount_; ++k) {
        const int i = (self + k) % threadCount_;
        ThreadState& t = threads_[i];
        if (!t.finished && t.spinBlocked) {
          t.spinBlocked = false;
          t.freshOnly = true;
          tids[n++] = i;
          wokeSpinner = true;
        }
      }
      if (!wokeSpinner) {
        bool anyUnfinished = false;
        for (int i = 0; i < threadCount_; ++i)
          if (!threads_[i].finished) anyUnfinished = true;
        if (anyUnfinished)
          fail("deadlock: all unfinished threads are blocked");
        return;  // run complete (or aborted by the deadlock report)
      }
      const int next = tids[0];  // first spinner after self, round-robin
      if (next == self) return;  // self was the only spinner: keep running
      current_ = next;
      threads_[next].sem.release();
      if (threads_[self].finished) return;  // exiting thread
      threads_[self].sem.acquire();
      return;
    }
    int pick = 0;
    if (n > 1)
      pick = choose(ChoiceKind::kSchedule, n, tids.data(), selfRunnable);
    if (aborted()) return;
    const int next = tids[pick];
    if (next == self) return;
    current_ = next;
    threads_[next].sem.release();
    if (!selfRunnable && threads_[self].finished) return;  // exiting thread
    threads_[self].sem.acquire();
  }

  void record(const std::source_location& loc, const char* op,
              const std::string& locName, std::memory_order mo,
              std::uint64_t value, int readChoice) {
    if (!opts_.traceSteps || aborted()) return;
    std::ostringstream os;
    os << "#" << steps_ << " [T" << tlsTid() << "] " << op << " " << locName
       << " @" << where(loc) << " order=" << detail::orderName(mo)
       << " value=" << value;
    if (readChoice > 0) os << " (stale read, " << readChoice << " back)";
    trace_.push_back(os.str());
  }

  void checkInvariant() {
    if (aborted() || !opts_.invariant || inInvariant_) return;
    inInvariant_ = true;
    opts_.invariant();
    inInvariant_ = false;
  }

  Options opts_;
  int threadCount_ = 0;
  std::array<ThreadState, kMaxThreads> threads_;
  std::unordered_map<const void*, AtomicLoc> atomics_;
  std::unordered_map<const void*, DataLoc> datas_;
  std::unordered_map<const void*, MutexState> mutexes_;
  std::vector<Site> sites_;

  long steps_ = 0;
  int current_ = 0;
  bool started_ = false;
  bool inInvariant_ = false;
  std::vector<std::string> trace_;
  std::vector<int> choices_;
  std::string violation_;
  std::atomic<bool> aborted_{false};
};

}  // namespace gravel::verify
