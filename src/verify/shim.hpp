// Instrumented atomics for GRAVEL_VERIFY=1 builds (DESIGN.md §8).
//
// gravel::atomic<T> here has the same layout as std::atomic<T> (its only
// member is the real backing atomic), so types that static_assert their size
// against a cache line — common/stats.hpp's Counter — compile identically in
// both build modes. Every operation:
//
//   1. reports itself to the active verify::Controller, which treats it as a
//      schedule point and resolves it against the operational weak-memory
//      model (store histories + vector clocks), and
//   2. mirrors the resulting value into the backing std::atomic, so that
//      when a violation aborts the run and the controller switches to
//      passthrough, the threads drain against real — and, because execution
//      was serialized, sequentially consistent — state.
//
// The std::source_location defaulted arguments capture the *caller's*
// file:line; that identity is what the mutation engine keys on and what the
// schedule traces print.
//
// Outside an exploration run (Controller::current() == nullptr) everything
// degrades to the plain std::atomic operation, so GRAVEL_VERIFY binaries can
// still run ordinary code paths (test setup, gtest internals).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <source_location>
#include <string>
#include <thread>
#include <type_traits>

#include "common/annotations.hpp"
#include "verify/controller.hpp"

namespace gravel {
namespace verify {

/// True in GRAVEL_VERIFY builds; lets code pick smaller spin budgets or
/// bounded test configs without sprinkling #ifdefs.
inline constexpr bool kEnabled = true;

namespace detail {

template <typename T>
constexpr std::uint64_t toWord(T v) noexcept {
  if constexpr (std::is_same_v<T, bool>) {
    return v ? 1u : 0u;
  } else {
    static_assert(std::is_integral_v<T> || std::is_enum_v<T>,
                  "gravel::atomic<T> verify shim supports integral types");
    static_assert(sizeof(T) <= sizeof(std::uint64_t));
    return static_cast<std::uint64_t>(v);
  }
}

template <typename T>
constexpr T fromWord(std::uint64_t w) noexcept {
  if constexpr (std::is_same_v<T, bool>) {
    return w != 0;
  } else {
    return static_cast<T>(w);
  }
}

}  // namespace detail

/// Record a read of plain (non-atomic) shared payload at `addr`; the
/// controller race-checks it against the happens-before relation.
inline void dataLoad(const void* addr, const std::source_location& loc =
                                           std::source_location::current()) {
  if (Controller* c = Controller::current()) c->modelData(addr, false, loc);
}

/// Record a write of plain shared payload at `addr`.
inline void dataStore(const void* addr, const std::source_location& loc =
                                            std::source_location::current()) {
  if (Controller* c = Controller::current()) c->modelData(addr, true, loc);
}

/// Failed spin-loop iteration: under the model this blocks the thread until
/// another thread stores something, instead of enumerating useless re-read
/// schedules. Outside a run it is a plain CPU yield.
inline void spinYield() {
  if (Controller* c = Controller::current())
    c->modelSpin();
  else
    std::this_thread::yield();
}

/// Adversary branch point for tests (drop/dup/reorder this batch?). The
/// explorer enumerates all `numOptions` outcomes; outside a run returns 0.
inline int choose(int numOptions, const std::source_location& loc =
                                      std::source_location::current()) {
  if (Controller* c = Controller::current())
    return c->modelChoose(numOptions, loc);
  return 0;
}

/// Report a violation (invariant breach) from test code. Uses active()
/// rather than current(): invariant callbacks run with schedule points
/// suppressed (current() == nullptr), but their verdicts must still land.
inline void fail(const std::string& message) {
  Controller* c = Controller::active();
  if (c && Controller::tlsTid() >= 0) c->fail(message);
}

}  // namespace verify

/// Drop-in std::atomic<T> replacement; see file comment. Same size and
/// alignment as std::atomic<T>.
template <typename T>
class atomic {
 public:
  constexpr atomic() noexcept : v_{} {}
  constexpr atomic(T desired) noexcept : v_{desired} {}
  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order mo, const std::source_location& loc =
                                   std::source_location::current()) const
      noexcept {
    if (verify::Controller* c = verify::Controller::current())
      return verify::detail::fromWord<T>(c->modelLoad(
          this, mo, verify::detail::toWord(v_.load(std::memory_order_seq_cst)),
          loc));
    return v_.load(mo);
  }

  void store(T desired, std::memory_order mo,
             const std::source_location& loc =
                 std::source_location::current()) noexcept {
    if (verify::Controller* c = verify::Controller::current()) {
      c->modelStore(this, verify::detail::toWord(desired), mo,
                    verify::detail::toWord(v_.load(std::memory_order_seq_cst)),
                    loc);
      v_.store(desired, std::memory_order_seq_cst);
      return;
    }
    v_.store(desired, mo);
  }

  T exchange(T desired, std::memory_order mo,
             const std::source_location& loc =
                 std::source_location::current()) noexcept {
    if (verify::Controller* c = verify::Controller::current()) {
      const std::uint64_t d = verify::detail::toWord(desired);
      const std::uint64_t old = c->modelRmw(
          this, [d](std::uint64_t) { return d; }, mo,
          verify::detail::toWord(v_.load(std::memory_order_seq_cst)), loc);
      v_.store(desired, std::memory_order_seq_cst);
      return verify::detail::fromWord<T>(old);
    }
    return v_.exchange(desired, mo);
  }

  T fetch_add(T arg, std::memory_order mo,
              const std::source_location& loc =
                  std::source_location::current()) noexcept {
    return rmwOp(
        arg, mo, loc, [](std::uint64_t o, std::uint64_t a) {
          return verify::detail::toWord(
              T(verify::detail::fromWord<T>(o) + verify::detail::fromWord<T>(a)));
        },
        [&](T a, std::memory_order m) { return v_.fetch_add(a, m); });
  }

  T fetch_sub(T arg, std::memory_order mo,
              const std::source_location& loc =
                  std::source_location::current()) noexcept {
    return rmwOp(
        arg, mo, loc, [](std::uint64_t o, std::uint64_t a) {
          return verify::detail::toWord(
              T(verify::detail::fromWord<T>(o) - verify::detail::fromWord<T>(a)));
        },
        [&](T a, std::memory_order m) { return v_.fetch_sub(a, m); });
  }

  bool compare_exchange_weak(T& expected, T desired, std::memory_order success,
                             std::memory_order failure,
                             const std::source_location& loc =
                                 std::source_location::current()) noexcept {
    return casOp(expected, desired, success, failure, loc);
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure,
                               const std::source_location& loc =
                                   std::source_location::current()) noexcept {
    return casOp(expected, desired, success, failure, loc);
  }

  /// Model-free peek at the backing value — for test invariants, which run
  /// on whichever thread just stepped and must not create schedule points.
  T peek() const noexcept { return v_.load(std::memory_order_seq_cst); }

 private:
  template <typename Fm, typename Fr>
  T rmwOp(T arg, std::memory_order mo, const std::source_location& loc,
          Fm modelFn, Fr realFn) noexcept {
    if (verify::Controller* c = verify::Controller::current()) {
      const std::uint64_t a = verify::detail::toWord(arg);
      const std::uint64_t old = c->modelRmw(
          this, [&](std::uint64_t o) { return modelFn(o, a); }, mo,
          verify::detail::toWord(v_.load(std::memory_order_seq_cst)), loc);
      v_.store(verify::detail::fromWord<T>(modelFn(old, a)),
               std::memory_order_seq_cst);
      return verify::detail::fromWord<T>(old);
    }
    return realFn(arg, mo);
  }

  bool casOp(T& expected, T desired, std::memory_order success,
             std::memory_order failure,
             const std::source_location& loc) noexcept {
    if (verify::Controller* c = verify::Controller::current()) {
      std::uint64_t e = verify::detail::toWord(expected);
      const bool ok =
          c->modelCas(this, e, verify::detail::toWord(desired), success,
                      failure,
                      verify::detail::toWord(v_.load(std::memory_order_seq_cst)),
                      loc);
      if (ok)
        v_.store(desired, std::memory_order_seq_cst);
      else
        expected = verify::detail::fromWord<T>(e);
      return ok;
    }
    return v_.compare_exchange_strong(expected, desired, success, failure);
  }

  mutable std::atomic<T> v_;
};

/// Instrumented std::atomic_flag equivalent (modeled as atomic<bool> RMWs).
class atomic_flag {
 public:
  constexpr atomic_flag() noexcept = default;

  bool test_and_set(std::memory_order mo,
                    const std::source_location& loc =
                        std::source_location::current()) noexcept {
    return flag_.exchange(true, mo, loc);
  }

  void clear(std::memory_order mo, const std::source_location& loc =
                                       std::source_location::current()) noexcept {
    flag_.store(false, mo, loc);
  }

  bool test(std::memory_order mo, const std::source_location& loc =
                                      std::source_location::current()) const
      noexcept {
    return flag_.load(mo, loc);
  }

 private:
  atomic<bool> flag_{false};
};

/// Instrumented mutex: the model arbitrates ownership (so lock() is a
/// schedule point and release->acquire edges enter the vector clocks); the
/// real std::mutex is still taken — uncontended during exploration because
/// execution is serialized, and load-bearing in passthrough mode after an
/// abort, where it alone preserves mutual exclusion. Capability-bearing
/// like the std-alias mutex, so GRAVEL_VERIFY=1 TUs get the same
/// -Wthread-safety checking as normal builds.
class GRAVEL_CAPABILITY("mutex") mutex {
 public:
  mutex() = default;
  /// Site-named construction (lock-contention profiling) is a normal-build
  /// concern: under the shim the name is accepted for source compatibility
  /// and ignored — the model checker owns all timing.
  explicit mutex(const char* /*site*/) {}
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock(const std::source_location& loc =
                std::source_location::current()) GRAVEL_ACQUIRE() {
    if (verify::Controller* c = verify::Controller::current())
      c->modelLock(this, loc);
    m_.lock();
  }

  void unlock(const std::source_location& loc =
                  std::source_location::current()) GRAVEL_RELEASE() {
    m_.unlock();
    if (verify::Controller* c = verify::Controller::current())
      c->modelUnlock(this, loc);
  }

 private:
  std::mutex m_;
};

}  // namespace gravel
