// CPU-baseline multi-producer/multi-consumer queue (paper §4.3, "CPU-only
// MPMC" series in Figure 8).
//
// Same synchronization algorithm as GravelQueue — global index fetch-add to
// pick a slot, per-slot round counter N and full/empty bit F — but each slot
// holds a single message written by a single CPU thread and is padded to a
// cache line. So every message pays one fetch-add plus slot handshaking,
// where Gravel amortizes that cost across a work-group of up to 256 messages.
//
// Model-checked under GRAVEL_VERIFY (tests/test_verify.cpp), including round
// wraparound with capacity forced to 2.
//
// gravel-lint: hot-path
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/atomic.hpp"
#include "common/cacheline.hpp"
#include "common/error.hpp"

namespace gravel {

/// Bounded MPMC byte-message queue, one padded message per slot.
class MpmcQueue {
 public:
  MpmcQueue(std::size_t capacityBytes, std::size_t messageBytes)
      : messageBytes_(messageBytes),
        cellBytes_(linesFor(messageBytes) * kCacheLineSize),
        capacity_(std::max<std::size_t>(
            2, capacityBytes / (cellBytes_ + sizeof(Slot)))),
        slots_(std::make_unique<Slot[]>(capacity_)),
        payload_(capacity_ * cellBytes_) {
    GRAVEL_CHECK_MSG(messageBytes > 0, "message size must be nonzero");
  }

  std::size_t capacity() const noexcept { return capacity_; }

  /// Blocking push of one message.
  void push(const void* msg) {
    const std::uint64_t idx =
        writeIdx_.value.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[idx % capacity_];
    const std::uint64_t round = idx / capacity_;
    // Acquire on round pairs with pop's round release: the previous round's
    // consumer finished reading the cell before we overwrite it.
    // pairs-with: mpmc.slot-round, mpmc.slot-full
    while (s.round.load(std::memory_order_acquire) != round ||
           s.full.load(std::memory_order_acquire)) {
      verify::spinYield();
    }
    std::byte* c = cell(idx);
    verify::dataStore(c);
    std::memcpy(c, msg, messageBytes_);
    // Release pairs with pop's full acquire: payload visible before F.
    s.full.store(true, std::memory_order_release);  // pairs-with: mpmc.slot-full
  }

  /// Blocking pop; returns false only when drained AND `stopped`.
  bool pop(void* msg, const atomic<bool>& stopped) {
    std::uint64_t claimed;
    for (;;) {
      claimed = readIdx_.value.load(std::memory_order_relaxed);
      if (claimed < writeIdx_.value.load(std::memory_order_acquire)) {
        if (readIdx_.value.compare_exchange_weak(claimed, claimed + 1,
                                                 std::memory_order_relaxed,
                                                 std::memory_order_relaxed)) {
          break;
        }
        continue;
      }
      // Same stopped-drain shape as GravelQueue::acquireRead; see the
      // comment there and the StoppedDrain model test.
      if (stopped.load(std::memory_order_acquire) &&  // pairs-with: aggregator.stopped
          readIdx_.value.load(std::memory_order_relaxed) >=
              writeIdx_.value.load(std::memory_order_acquire)) {
        return false;
      }
      verify::spinYield();
    }
    Slot& s = slots_[claimed % capacity_];
    const std::uint64_t round = claimed / capacity_;
    while (s.round.load(std::memory_order_acquire) != round ||
           !s.full.load(std::memory_order_acquire)) {
      verify::spinYield();
    }
    const std::byte* c = cell(claimed);
    verify::dataLoad(c);
    std::memcpy(msg, c, messageBytes_);
    s.full.store(false, std::memory_order_relaxed);
    // Release pairs with push's round acquire: our cell read completes
    // before the next-round producer reuses the cell.
    s.round.store(round + 1, std::memory_order_release);  // pairs-with: mpmc.slot-round
    return true;
  }

#if defined(GRAVEL_VERIFY) && GRAVEL_VERIFY
  std::uint64_t peekSlotRound(std::size_t slot) const noexcept {
    return slots_[slot].round.peek();
  }
  bool peekSlotFull(std::size_t slot) const noexcept {
    return slots_[slot].full.peek();
  }
#endif

 private:
  struct alignas(kCacheLineSize) Slot {
    atomic<std::uint64_t> round{0};
    atomic<bool> full{false};
  };

  std::byte* cell(std::uint64_t idx) noexcept {
    return payload_.data() + (idx % capacity_) * cellBytes_;
  }
  const std::byte* cell(std::uint64_t idx) const noexcept {
    return payload_.data() + (idx % capacity_) * cellBytes_;
  }

  std::size_t messageBytes_;
  std::size_t cellBytes_;
  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::vector<std::byte> payload_;
  CacheAligned<atomic<std::uint64_t>> writeIdx_{};
  CacheAligned<atomic<std::uint64_t>> readIdx_{};
};

}  // namespace gravel

// gravel-lint: hot-path — lock-free; no mutexes, sleeps, or raw yields.
// (Marker kept at end of file: the memory-order mutation matrix in
// tests/test_verify_mutation.cpp pins line numbers in this header.)
