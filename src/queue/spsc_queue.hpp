// CPU-baseline single-producer/single-consumer bounded queue (paper §4.3,
// "CPU-only SPSC" series in Figure 8).
//
// This is the textbook bounded-array design: a padded write index, a padded
// read index, and one padded payload cell per message. The padding avoids
// false sharing between producer and consumer, but it is exactly why small
// messages are expensive — an 8-byte send touches three cache lines (read
// index, write index, payload line), which Figure 8 contrasts against
// Gravel's half-byte-per-message amortized overhead.
//
// Model-checked under GRAVEL_VERIFY (tests/test_verify.cpp): wraparound,
// full/empty boundaries, and the acquire/release pairing on both indices.
//
// gravel-lint: hot-path
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/atomic.hpp"
#include "common/cacheline.hpp"
#include "common/error.hpp"

namespace gravel {

/// Bounded SPSC byte-message queue. `messageBytes` is fixed at construction;
/// each cell is padded to a whole number of cache lines.
class SpscQueue {
 public:
  SpscQueue(std::size_t capacityBytes, std::size_t messageBytes)
      : messageBytes_(messageBytes),
        cellBytes_(linesFor(messageBytes) * kCacheLineSize),
        capacity_(std::max<std::size_t>(2, capacityBytes / cellBytes_)),
        payload_(capacity_ * cellBytes_) {
    GRAVEL_CHECK_MSG(messageBytes > 0, "message size must be nonzero");
  }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t messageBytes() const noexcept { return messageBytes_; }

  /// Blocking push of one message (spins while full).
  void push(const void* msg) {
    const std::uint64_t wr = writeIdx_.value.load(std::memory_order_relaxed);
    // Acquire pairs with tryPop's readIdx release: the consumer's reads of
    // the cell we are about to overwrite happened-before this overwrite.
    // pairs-with: spsc.read-idx
    while (wr - readIdx_.value.load(std::memory_order_acquire) >= capacity_) {
      verify::spinYield();
    }
    std::byte* c = cell(wr);
    verify::dataStore(c);
    std::memcpy(c, msg, messageBytes_);
    // Release pairs with tryPop's writeIdx acquire: the payload copy above
    // is visible to the consumer that observes wr + 1.
    writeIdx_.value.store(wr + 1, std::memory_order_release);  // pairs-with: spsc.write-idx
  }

  /// Non-blocking pop; returns false when empty.
  bool tryPop(void* msg) {
    const std::uint64_t rd = readIdx_.value.load(std::memory_order_relaxed);
    // pairs-with: spsc.write-idx
    if (rd >= writeIdx_.value.load(std::memory_order_acquire)) return false;
    const std::byte* c = cell(rd);
    verify::dataLoad(c);
    std::memcpy(msg, c, messageBytes_);
    // Release pairs with push's readIdx acquire: our cell read completes
    // before the producer may reuse the cell.
    readIdx_.value.store(rd + 1, std::memory_order_release);  // pairs-with: spsc.read-idx
    return true;
  }

  /// Blocking pop; returns false only when empty AND `stopped`.
  bool pop(void* msg, const atomic<bool>& stopped) {
    while (!tryPop(msg)) {
      if (stopped.load(std::memory_order_acquire)) {  // pairs-with: aggregator.stopped
        // Re-check after observing stop so no published message is lost.
        return tryPop(msg);
      }
      verify::spinYield();
    }
    return true;
  }

#if defined(GRAVEL_VERIFY) && GRAVEL_VERIFY
  std::uint64_t peekWriteIdx() const noexcept { return writeIdx_.value.peek(); }
  std::uint64_t peekReadIdx() const noexcept { return readIdx_.value.peek(); }
#endif

 private:
  std::byte* cell(std::uint64_t idx) noexcept {
    return payload_.data() + (idx % capacity_) * cellBytes_;
  }
  const std::byte* cell(std::uint64_t idx) const noexcept {
    return payload_.data() + (idx % capacity_) * cellBytes_;
  }

  std::size_t messageBytes_;
  std::size_t cellBytes_;
  std::size_t capacity_;
  std::vector<std::byte> payload_;
  CacheAligned<atomic<std::uint64_t>> writeIdx_{};
  CacheAligned<atomic<std::uint64_t>> readIdx_{};
};

}  // namespace gravel

// gravel-lint: hot-path — lock-free; no mutexes, sleeps, or raw yields.
// (Marker kept at end of file: the memory-order mutation matrix in
// tests/test_verify_mutation.cpp pins line numbers in this header.)
