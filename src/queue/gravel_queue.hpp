// Gravel's GPU-efficient producer/consumer queue (paper §4.2, Figure 7).
//
// The queue is a bounded ring of *slots*. Each slot is a two-dimensional
// payload: `rows` x `lanes` 64-bit words, where column l holds work-item l's
// message and row f holds field f of every message (command, destination,
// address, value, ...). A whole work-group deposits up to `lanes` messages
// into one slot, so producer/consumer synchronization is amortized across the
// work-group:
//
//   - a global WriteIdx fetch-add picks the slot (one RMW per work-group),
//   - a per-slot ticket (WriteTick) orders producers that alias to the same
//     slot across ring wrap-arounds,
//   - a per-slot ticket (ReadTick) orders consumers the same way,
//   - a full/empty bit F plus round counter N arbitrate between the producer
//     holding the write ticket and the consumer holding the read ticket:
//     the slot is writable in round r when N == r && !F, and readable in
//     round r when N == r && F. Consuming clears F and increments N.
//
// The row-major payload is what lets GPU work-items in one work-group write
// their messages into shared cache lines (memory coalescing); the CPU-only
// baselines in spsc_queue.hpp / mpmc_queue.hpp need a padded cache line per
// message instead, which is the §4.3 bandwidth gap for small messages.
//
// The memory-order protocol here is model-checked: tests/test_verify.cpp
// explores bounded configurations exhaustively, and the mutation self-test
// weakens each acquire/release below to relaxed and asserts the checker
// objects (DESIGN.md §8).
//
// gravel-lint: hot-path
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/atomic.hpp"
#include "common/cacheline.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"

namespace gravel {

/// Configuration for a GravelQueue.
struct GravelQueueConfig {
  /// Total payload capacity in bytes (paper default: 1 MiB, Table 3).
  std::size_t capacity_bytes = 1 << 20;
  /// Messages per slot == maximum work-group size (paper: 256).
  std::uint32_t lanes = 256;
  /// 64-bit words per message (paper: command, destination, address, value).
  std::uint32_t rows = 4;
};

/// Callback invoked while spin-waiting; lets the SIMT fiber scheduler run
/// other work-groups (and lets a 1-core host make progress).
using YieldFn = std::function<void()>;

/// The §4.2 slotted ticket queue. Thread-safe for any number of producers
/// and consumers. Producers reserve a whole slot (up to `lanes` messages);
/// consumers drain a whole slot.
class GravelQueue {
 public:
  explicit GravelQueue(const GravelQueueConfig& config)
      : config_(config),
        slotWords_(std::size_t{config.rows} * config.lanes),
        slotCount_(computeSlotCount(config)) {
    GRAVEL_CHECK_MSG(config.lanes > 0 && config.rows > 0,
                     "queue needs nonzero lanes and rows");
    slots_ = std::make_unique<Slot[]>(slotCount_);
    payload_.assign(slotCount_ * slotWords_, 0);
  }

  std::size_t slotCount() const noexcept { return slotCount_; }
  std::uint32_t lanes() const noexcept { return config_.lanes; }
  std::uint32_t rows() const noexcept { return config_.rows; }
  std::size_t messageBytes() const noexcept { return config_.rows * 8u; }

  /// Handle to a reserved slot. Producers fill columns [0, count) and then
  /// publish(); consumers read columns [0, count) and then release().
  struct SlotRef {
    std::uint32_t slot = 0;   ///< slot index in the ring
    std::uint64_t round = 0;  ///< which wrap-around of the ring
    std::uint32_t count = 0;  ///< number of valid messages (set by producer)
  };

  /// Producer side, step 1: claim the next slot. Called once per work-group
  /// (by the leader work-item). Spins until the slot's previous round has
  /// been consumed. `count` is the number of messages the group will write.
  SlotRef acquireWrite(std::uint32_t count, const YieldFn& yield = {}) {
    GRAVEL_CHECK_MSG(count > 0 && count <= config_.lanes,
                     "write count must be in [1, lanes]");
    const std::uint64_t idx = writeIdx_.fetch_add(1, std::memory_order_relaxed);
    bumpAtomics();
    Slot& s = slots_[idx % slotCount_];
    // Per-slot write ticket (paper's WriteTick). The global WriteIdx already
    // hands the rounds of slot (idx % S) out in order — producer idx gets
    // ticket idx / S — so a second per-slot fetch-add would only risk
    // inverting rounds between two groups that alias the same slot; we derive
    // the ticket instead of re-counting.
    const std::uint64_t ticket = idx / slotCount_;
    // Wait for our round: N == ticket and the slot drained (F clear).
    // The acquire on round pairs with release()'s round.store: it orders this
    // producer's payload writes after the previous round's consumer reads.
    spinUntil(
        [&] {
          return s.round.load(std::memory_order_acquire) == ticket &&  // pairs-with: gq.slot-round
                 !s.full.load(std::memory_order_acquire);  // pairs-with: gq.slot-full
        },
        yield);
    return SlotRef{static_cast<std::uint32_t>(idx % slotCount_), ticket, count};
  }

  /// Producer side, step 2: the 64-bit word for field `row` of message
  /// `lane`. Every lane writes its own column concurrently, no ordering
  /// needed between lanes of the same group.
  std::uint64_t& wordAt(const SlotRef& ref, std::uint32_t row,
                        std::uint32_t lane) noexcept {
    return payload_[wordIndex(ref, row, lane)];
  }

  /// wordAt with the access announced to the verification layer's race
  /// detector (no-ops in normal builds). New code and the typed facade use
  /// these; the reference-returning wordAt remains for coalescing loops.
  void putWord(const SlotRef& ref, std::uint32_t row, std::uint32_t lane,
               std::uint64_t value) noexcept {
    std::uint64_t& w = payload_[wordIndex(ref, row, lane)];
    verify::dataStore(&w);
    w = value;
  }
  std::uint64_t getWord(const SlotRef& ref, std::uint32_t row,
                        std::uint32_t lane) const noexcept {
    const std::uint64_t& w = payload_[wordIndex(ref, row, lane)];
    verify::dataLoad(&w);
    return w;
  }

  /// Producer side, step 3: make the slot visible to consumers. Called once
  /// per work-group (by the leader) after all lanes wrote their columns.
  void publish(const SlotRef& ref) {
    Slot& s = slots_[ref.slot];
    s.count.store(ref.count, std::memory_order_relaxed);
    // Release: the payload and count written above become visible to the
    // consumer whose acquire load sees F set.
    s.full.store(true, std::memory_order_release);  // pairs-with: gq.slot-full
    // Pure stats counter with no acquire-side reader anywhere (the slot's
    // `full` flag above is the publication edge), so relaxed is correct.
    publishCount_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Consumer side, step 1: claim the next slot if any message will ever be
  /// available for it. Returns false if the queue is drained AND `stopped`
  /// is true. Blocks (spinning/yielding) otherwise.
  ///
  /// Liveness argument: readIdx_ is only advanced after observing
  /// writeIdx_ > readIdx_, i.e. some producer has already claimed that round
  /// of the ring; every producer that claims publishes in finite time, so the
  /// spin on F terminates.
  ///
  /// Stopped-drain: the relaxed readIdx_ re-read below is intentional. It can
  /// only observe a *stale (smaller)* value, which keeps the consumer in the
  /// loop for another iteration — never an early exit. Exit requires
  /// readIdx >= writeIdx with writeIdx read acquire AFTER observing
  /// stopped == true (acquire), and the stop protocol releases `stopped`
  /// after all producers quiesce, so no claimed slot can be missed. This is
  /// not just an argument: tests/test_verify.cpp GravelQueueStoppedDrain
  /// explores the interleavings exhaustively and checks the no-lost-message
  /// invariant.
  bool acquireRead(SlotRef& out, const atomic<bool>& stopped,
                   const YieldFn& yield = {}) {
    std::uint64_t claimed;
    for (;;) {
      claimed = readIdx_.load(std::memory_order_relaxed);
      const std::uint64_t written = writeIdx_.load(std::memory_order_acquire);
      if (claimed < written) {
        if (readIdx_.compare_exchange_weak(claimed, claimed + 1,
                                           std::memory_order_relaxed,
                                           std::memory_order_relaxed)) {
          bumpAtomics();
          break;
        }
        continue;  // lost the race; retry
      }
      if (stopped.load(std::memory_order_acquire) &&
          readIdx_.load(std::memory_order_relaxed) >=
              writeIdx_.load(std::memory_order_acquire)) {
        return false;
      }
      doYield(yield);
    }
    Slot& s = slots_[claimed % slotCount_];
    // Per-slot read ticket (paper's ReadTick), derived from the global claim
    // index for the same reason as on the write side.
    const std::uint64_t ticket = claimed / slotCount_;
    // The acquire on full pairs with publish()'s release store; it makes the
    // producer's payload writes visible before getWord reads them.
    spinUntil(
        [&] {
          return s.round.load(std::memory_order_acquire) == ticket &&  // pairs-with: gq.slot-round
                 s.full.load(std::memory_order_acquire);  // pairs-with: gq.slot-full
        },
        yield);
    out.slot = static_cast<std::uint32_t>(claimed % slotCount_);
    out.round = ticket;
    out.count = s.count.load(std::memory_order_relaxed);
    return true;
  }

  /// Non-blocking variant of acquireRead for cooperative (pooled) drivers:
  /// returns false immediately when no slot has been claimed-and-unread,
  /// instead of spinning for new work. A true return still waits for the
  /// claimed slot's publish (bounded: the producer already claimed this
  /// round, so it publishes in finite time — same liveness argument as
  /// acquireRead), so the caller gets the identical post-condition.
  bool tryAcquireRead(SlotRef& out) {
    std::uint64_t claimed;
    for (;;) {
      claimed = readIdx_.load(std::memory_order_relaxed);
      const std::uint64_t written = writeIdx_.load(std::memory_order_acquire);
      if (claimed >= written) return false;
      if (readIdx_.compare_exchange_weak(claimed, claimed + 1,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
        bumpAtomics();
        break;
      }
      // lost the race; retry
    }
    Slot& s = slots_[claimed % slotCount_];
    const std::uint64_t ticket = claimed / slotCount_;
    spinUntil(
        [&] {
          return s.round.load(std::memory_order_acquire) == ticket &&  // pairs-with: gq.slot-round
                 s.full.load(std::memory_order_acquire);  // pairs-with: gq.slot-full
        },
        {});
    out.slot = static_cast<std::uint32_t>(claimed % slotCount_);
    out.round = ticket;
    out.count = s.count.load(std::memory_order_relaxed);
    return true;
  }

  /// Consumer side, step 2 is wordAt()/getWord() on the claimed columns.
  const std::uint64_t& wordAt(const SlotRef& ref, std::uint32_t row,
                              std::uint32_t lane) const noexcept {
    return payload_[wordIndex(ref, row, lane)];
  }

  /// Consumer side, step 3: release the slot for the next round (clears F,
  /// bumps N — Figure 7 time 5).
  void release(const SlotRef& ref) {
    Slot& s = slots_[ref.slot];
    s.full.store(false, std::memory_order_relaxed);
    // Release: the consumer's payload reads complete before the next-round
    // producer (acquire on round in acquireWrite) may overwrite the slot.
    s.round.store(ref.round + 1, std::memory_order_release);  // pairs-with: gq.slot-round
  }

  /// Consumer bulk decode: copies the slot's `ref.count` messages into
  /// `out[0..ref.count)` in a single row-major pass. Each payload row is
  /// read contiguously (the same layout the GPU wrote coalesced), so the
  /// whole slot costs one streaming sweep instead of rows x count strided
  /// wordAt() calls. T must be trivially copyable and exactly `rows` words
  /// wide (word r of message `lane` is payload row r, column `lane`).
  template <typename T>
  void copySlot(const SlotRef& ref, T* out) const {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(sizeof(T) % 8 == 0, "message must be whole 64-bit words");
    GRAVEL_CHECK_MSG(sizeof(T) == messageBytes(),
                     "copySlot message width must match the queue's rows");
    const std::uint64_t* base =
        payload_.data() + std::size_t{ref.slot} * slotWords_;
    for (std::uint32_t row = 0; row < config_.rows; ++row) {
      const std::uint64_t* src = base + std::size_t{row} * config_.lanes;
      unsigned char* dstBytes =
          reinterpret_cast<unsigned char*>(out) + std::size_t{row} * 8;
      for (std::uint32_t lane = 0; lane < ref.count; ++lane) {
        verify::dataLoad(src + lane);
        std::memcpy(dstBytes + std::size_t{lane} * sizeof(T), src + lane, 8);
      }
    }
  }

  /// Total write reservations so far; with Aggregator::slotsProcessed this
  /// forms the runtime's quiescence check.
  std::uint64_t reservedCount() const noexcept {
    return writeIdx_.load(std::memory_order_acquire);
  }

  /// True when every published slot has been claimed by a consumer.
  bool drained() const noexcept {
    return readIdx_.load(std::memory_order_acquire) >=
           writeIdx_.load(std::memory_order_acquire);
  }

  /// Number of shared-memory atomic RMWs issued so far (Figure 6's right
  /// axis is this, divided by messages offloaded).
  std::uint64_t atomicRmwCount() const noexcept {
    return atomics_.load(std::memory_order_relaxed);
  }
  void resetAtomicRmwCount() noexcept {
    atomics_.store(0, std::memory_order_relaxed);
  }

#if defined(GRAVEL_VERIFY) && GRAVEL_VERIFY
  /// Model-free state peeks for model-test invariants (verify builds only).
  std::uint64_t peekSlotRound(std::uint32_t slot) const noexcept {
    return slots_[slot].round.peek();
  }
  bool peekSlotFull(std::uint32_t slot) const noexcept {
    return slots_[slot].full.peek();
  }
  std::uint32_t peekSlotCount(std::uint32_t slot) const noexcept {
    return slots_[slot].count.peek();
  }
  std::uint64_t peekWriteIdx() const noexcept { return writeIdx_.peek(); }
  std::uint64_t peekReadIdx() const noexcept { return readIdx_.peek(); }
#endif

 private:
  struct alignas(kCacheLineSize) Slot {
    atomic<std::uint64_t> round{0};   ///< N in Figure 7
    atomic<std::uint32_t> count{0};   ///< valid messages this round
    atomic<bool> full{false};         ///< F in Figure 7
  };

  static std::size_t computeSlotCount(const GravelQueueConfig& c) {
    const std::size_t slotBytes = std::size_t{c.rows} * 8 * c.lanes;
    // At least two slots so one group can fill while a consumer drains.
    return std::max<std::size_t>(2, c.capacity_bytes / std::max<std::size_t>(
                                                           1, slotBytes));
  }

  std::size_t wordIndex(const SlotRef& ref, std::uint32_t row,
                        std::uint32_t lane) const noexcept {
    return ref.slot * slotWords_ + std::size_t{row} * config_.lanes + lane;
  }

  // Under the model checker each failed probe must become a schedule point
  // immediately, or the cooperative scheduler would spin forever waiting for
  // a store that only another thread can make.
  static constexpr int kSpinsBeforeYield = verify::kEnabled ? 1 : 64;

  template <typename Pred>
  void spinUntil(const Pred& ready, const YieldFn& yield) const {
    int spins = 0;
    while (!ready()) {
      if (++spins >= kSpinsBeforeYield) {
        doYield(yield);
        spins = 0;
      }
    }
  }

  void doYield(const YieldFn& yield) const {
    if (yield)
      yield();
    else
      verify::spinYield();
  }

  void bumpAtomics() noexcept {
    atomics_.fetch_add(1, std::memory_order_relaxed);
  }

  GravelQueueConfig config_;
  std::size_t slotWords_;
  std::size_t slotCount_;
  std::unique_ptr<Slot[]> slots_;
  std::vector<std::uint64_t> payload_;

  alignas(kCacheLineSize) atomic<std::uint64_t> writeIdx_{0};
  alignas(kCacheLineSize) atomic<std::uint64_t> readIdx_{0};
  alignas(kCacheLineSize) atomic<std::uint64_t> publishCount_{0};
  alignas(kCacheLineSize) mutable atomic<std::uint64_t> atomics_{0};
};

/// Typed facade over GravelQueue for trivially-copyable messages whose size
/// is a multiple of 8 bytes. Field words of message type T map to payload
/// rows, preserving the row-major (coalescing-friendly) layout.
template <typename T>
class TypedGravelQueue {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(sizeof(T) % 8 == 0, "message must be whole 64-bit words");

 public:
  static constexpr std::uint32_t kRows = sizeof(T) / 8;

  TypedGravelQueue(std::size_t capacityBytes, std::uint32_t lanes)
      : queue_(GravelQueueConfig{capacityBytes, lanes, kRows}) {}

  GravelQueue& raw() noexcept { return queue_; }
  std::uint32_t lanes() const noexcept { return queue_.lanes(); }

  using SlotRef = GravelQueue::SlotRef;

  SlotRef acquireWrite(std::uint32_t count, const YieldFn& yield = {}) {
    return queue_.acquireWrite(count, yield);
  }
  void store(const SlotRef& ref, std::uint32_t lane, const T& msg) noexcept {
    std::uint64_t words[kRows];
    std::memcpy(words, &msg, sizeof(T));
    for (std::uint32_t r = 0; r < kRows; ++r)
      queue_.putWord(ref, r, lane, words[r]);
  }
  void publish(const SlotRef& ref) { queue_.publish(ref); }

  bool acquireRead(SlotRef& out, const atomic<bool>& stopped,
                   const YieldFn& yield = {}) {
    return queue_.acquireRead(out, stopped, yield);
  }
  T load(const SlotRef& ref, std::uint32_t lane) const noexcept {
    std::uint64_t words[kRows];
    for (std::uint32_t r = 0; r < kRows; ++r)
      words[r] = queue_.getWord(ref, r, lane);
    T msg;
    std::memcpy(&msg, words, sizeof(T));
    return msg;
  }
  void release(const SlotRef& ref) { queue_.release(ref); }
  bool drained() const noexcept { return queue_.drained(); }
  std::uint64_t atomicRmwCount() const noexcept {
    return queue_.atomicRmwCount();
  }

 private:
  GravelQueue queue_;
};

}  // namespace gravel

// gravel-lint: hot-path — lock-free; no mutexes, sleeps, or raw yields.
// (Marker kept at end of file: the memory-order mutation matrix in
// tests/test_verify_mutation.cpp pins line numbers in this header.)
