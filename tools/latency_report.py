#!/usr/bin/env python3
"""Per-stage latency report over a gravel_metrics.json snapshot.

Reads the ``lat.*`` metrics the latency-attribution engine
(src/obs/latency.hpp) publishes — pooled per-transition Pow2Histograms and
the end-to-end histogram — recomputes p50/p99 from the exported bucket
arrays, prints one row per pipeline transition, and names the bottleneck
(the transition with the largest p99).

The quantile rule replicates Pow2Histogram::quantile exactly: bucket 0
holds {0}, bucket i>=1 covers [2^(i-1), 2^i); the estimate interpolates
linearly inside the bucket where the cumulative count crosses q*total.

Usage:
    latency_report.py [gravel_metrics.json]

Exit status: 0 report printed, 1 no latency metrics in the snapshot
(tracing was off or nothing was sampled), 2 usage/parse error.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

# Pipeline transitions in order, matching obs::transitionLabel.
TRANSITIONS = [
    "enqueue_to_aggregate",
    "aggregate_to_flush",
    "flush_to_wire-send",
    "wire-send_to_deliver",
    "deliver_to_resolve",
]


def quantile(buckets: list[int], q: float) -> float:
    """Pow2Histogram::quantile — see src/common/stats.hpp."""
    total = sum(buckets)
    if total == 0:
        return 0.0
    q = min(max(q, 0.0), 1.0)
    target = q * total
    cum = 0
    for i, count in enumerate(buckets):
        if count == 0:
            continue
        before = cum
        cum += count
        if cum >= target:
            lo = 0.0 if i == 0 else float(1 << (i - 1))
            hi = 1.0 if i == 0 else float(1 << i)
            frac = (target - before) / count
            frac = min(max(frac, 0.0), 1.0)
            return lo + frac * (hi - lo)
    return float(1 << (len(buckets) - 1))


def fmt_ns(ns: float) -> str:
    if ns >= 1e6:
        return f"{ns / 1e6:8.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:8.2f} us"
    return f"{ns:8.0f} ns"


def main(argv: list[str]) -> int:
    if len(argv) > 2 or (len(argv) == 2 and argv[1].startswith("-")):
        print(__doc__, file=sys.stderr)
        return 2
    path = Path(argv[1]) if len(argv) == 2 else Path("gravel_metrics.json")
    try:
        snapshot = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        return 2

    # Pooled per-transition histograms carry labels exactly "stage=<t>";
    # keyed variants ("dest=...,kind=...,stage=...") are skipped here.
    stage_hists: dict[str, list[int]] = {}
    e2e_hist: list[int] | None = None
    for m in snapshot.get("metrics", []):
        if m.get("kind") != "histogram":
            continue
        name, labels = m.get("name"), m.get("labels", "")
        if name == "lat.stage_ns" and labels.startswith("stage="):
            stage_hists[labels[len("stage="):]] = m.get("buckets", [])
        elif name == "lat.e2e_ns" and labels == "":
            e2e_hist = m.get("buckets", [])

    if not stage_hists and e2e_hist is None:
        print("no latency metrics found (was the run traced? GRAVEL_TRACE=1)",
              file=sys.stderr)
        return 1

    print(f"{'transition':<24} {'samples':>9} {'p50':>11} {'p99':>11}")
    bottleneck = None
    worst_p99 = -1.0
    for t in TRANSITIONS:
        buckets = stage_hists.get(t)
        if not buckets or sum(buckets) == 0:
            print(f"{t:<24} {0:>9} {'-':>11} {'-':>11}")
            continue
        p50 = quantile(buckets, 0.50)
        p99 = quantile(buckets, 0.99)
        print(f"{t:<24} {sum(buckets):>9} {fmt_ns(p50):>11} {fmt_ns(p99):>11}")
        if p99 > worst_p99:
            worst_p99 = p99
            bottleneck = t
    if e2e_hist is not None and sum(e2e_hist) > 0:
        p50 = quantile(e2e_hist, 0.50)
        p99 = quantile(e2e_hist, 0.99)
        print(f"{'end_to_end':<24} {sum(e2e_hist):>9} "
              f"{fmt_ns(p50):>11} {fmt_ns(p99):>11}")
    if bottleneck is not None:
        print(f"\nbottleneck: {bottleneck} (p99 {fmt_ns(worst_p99).strip()})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
