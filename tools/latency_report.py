#!/usr/bin/env python3
"""Per-stage latency report over a gravel_metrics.json snapshot.

Reads the ``lat.*`` metrics the latency-attribution engine
(src/obs/latency.hpp) publishes — pooled per-transition Pow2Histograms and
the end-to-end histogram — recomputes p50/p99 from the exported bucket
arrays, prints one row per pipeline transition, and names the bottleneck
(the transition with the largest p99).

The quantile rule replicates Pow2Histogram::quantile exactly: bucket 0
holds {0}, bucket i>=1 covers [2^(i-1), 2^i); the estimate interpolates
linearly inside the bucket where the cumulative count crosses q*total.

Usage:
    latency_report.py [gravel_metrics.json] [--json]
    latency_report.py --parity-check CASES.json

``--json`` emits the same report as machine-readable JSON on stdout so CI
can pipe it. ``--parity-check`` verifies this script's quantile() against
C++-computed expectations (written by the Pow2Histogram parity test) and is
not a user-facing mode.

Exit status: 0 report printed (or parity held), 1 no latency metrics in the
snapshot (tracing was off or nothing was sampled) or parity mismatch,
2 usage/parse error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Pipeline transitions in order, matching obs::transitionLabel.
TRANSITIONS = [
    "enqueue_to_aggregate",
    "aggregate_to_flush",
    "flush_to_wire-send",
    "wire-send_to_deliver",
    "deliver_to_resolve",
]


def quantile(buckets: list[int], q: float) -> float:
    """Pow2Histogram::quantile — see src/common/stats.hpp."""
    total = sum(buckets)
    if total == 0:
        return 0.0
    q = min(max(q, 0.0), 1.0)
    target = q * total
    cum = 0
    for i, count in enumerate(buckets):
        if count == 0:
            continue
        before = cum
        cum += count
        if cum >= target:
            lo = 0.0 if i == 0 else float(1 << (i - 1))
            hi = 1.0 if i == 0 else float(1 << i)
            frac = (target - before) / count
            frac = min(max(frac, 0.0), 1.0)
            return lo + frac * (hi - lo)
    return float(1 << (len(buckets) - 1))


def fmt_ns(ns: float) -> str:
    if ns >= 1e6:
        return f"{ns / 1e6:8.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:8.2f} us"
    return f"{ns:8.0f} ns"


def extract_histograms(snapshot: object) -> tuple[dict, list[int] | None]:
    """Pooled per-transition + e2e bucket arrays from a metrics document.

    Tolerates structurally odd documents (missing keys, non-list buckets)
    by skipping the offending rows — absence is reported by the caller, not
    raised as KeyError.
    """
    stage_hists: dict[str, list[int]] = {}
    e2e_hist: list[int] | None = None
    if not isinstance(snapshot, dict):
        return stage_hists, e2e_hist
    rows = snapshot.get("metrics", [])
    if not isinstance(rows, list):
        return stage_hists, e2e_hist
    for m in rows:
        if not isinstance(m, dict) or m.get("kind") != "histogram":
            continue
        name, labels = m.get("name"), m.get("labels", "")
        buckets = m.get("buckets", [])
        if not isinstance(buckets, list) or not isinstance(labels, str):
            continue
        # Pooled histograms carry labels exactly "stage=<t>"; keyed variants
        # ("dest=...,kind=...,stage=...") are skipped here.
        if name == "lat.stage_ns" and labels.startswith("stage="):
            stage_hists[labels[len("stage="):]] = buckets
        elif name == "lat.e2e_ns" and labels == "":
            e2e_hist = buckets
    return stage_hists, e2e_hist


def build_report(stage_hists: dict, e2e_hist: list[int] | None) -> dict:
    report: dict = {"transitions": [], "e2e": None, "bottleneck": None}
    worst_p99 = -1.0
    for t in TRANSITIONS:
        buckets = stage_hists.get(t)
        samples = sum(buckets) if buckets else 0
        row: dict = {"transition": t, "samples": samples}
        if samples:
            row["p50_ns"] = quantile(buckets, 0.50)
            row["p99_ns"] = quantile(buckets, 0.99)
            if row["p99_ns"] > worst_p99:
                worst_p99 = row["p99_ns"]
                report["bottleneck"] = t
        report["transitions"].append(row)
    if e2e_hist is not None and sum(e2e_hist) > 0:
        report["e2e"] = {
            "samples": sum(e2e_hist),
            "p50_ns": quantile(e2e_hist, 0.50),
            "p99_ns": quantile(e2e_hist, 0.99),
        }
    return report


def print_report(report: dict) -> None:
    print(f"{'transition':<24} {'samples':>9} {'p50':>11} {'p99':>11}")
    for row in report["transitions"]:
        if row["samples"] == 0:
            print(f"{row['transition']:<24} {0:>9} {'-':>11} {'-':>11}")
            continue
        print(f"{row['transition']:<24} {row['samples']:>9} "
              f"{fmt_ns(row['p50_ns']):>11} {fmt_ns(row['p99_ns']):>11}")
    e2e = report["e2e"]
    if e2e is not None:
        print(f"{'end_to_end':<24} {e2e['samples']:>9} "
              f"{fmt_ns(e2e['p50_ns']):>11} {fmt_ns(e2e['p99_ns']):>11}")
    if report["bottleneck"] is not None:
        p99 = next(r["p99_ns"] for r in report["transitions"]
                   if r["transition"] == report["bottleneck"])
        print(f"\nbottleneck: {report['bottleneck']} "
              f"(p99 {fmt_ns(p99).strip()})")


def parity_check(path: Path) -> int:
    """Compares quantile() against C++-computed expectations.

    The cases file (written by tests/test_common.cpp's parity test) holds
    ``{"cases": [{"buckets": [...], "q": 0.5, "expected": 12.5}, ...]}``.
    """
    try:
        doc = json.loads(path.read_text())
        cases = doc["cases"]
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as e:
        print(f"error: cannot read parity cases {path}: {e}", file=sys.stderr)
        return 2
    failures = 0
    for i, case in enumerate(cases):
        got = quantile(list(case["buckets"]), float(case["q"]))
        want = float(case["expected"])
        tol = max(1e-9, 1e-9 * abs(want))
        if abs(got - want) > tol:
            print(f"parity mismatch, case {i}: q={case['q']} "
                  f"python={got!r} c++={want!r}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"{failures}/{len(cases)} case(s) diverged", file=sys.stderr)
        return 1
    print(f"parity ok: {len(cases)} case(s)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("snapshot", nargs="?", default="gravel_metrics.json",
                        help="metrics snapshot (default: gravel_metrics.json)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON on stdout")
    parser.add_argument("--parity-check", metavar="CASES",
                        help="verify quantile() against C++ expectations")
    try:
        args = parser.parse_args(argv[1:])
    except SystemExit as e:
        return 0 if e.code == 0 else 2

    if args.parity_check:
        return parity_check(Path(args.parity_check))

    path = Path(args.snapshot)
    try:
        snapshot = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        return 2

    stage_hists, e2e_hist = extract_histograms(snapshot)
    if not stage_hists and e2e_hist is None:
        print("no latency metrics found (was the run traced? GRAVEL_TRACE=1)",
              file=sys.stderr)
        return 1

    report = build_report(stage_hists, e2e_hist)
    if args.json:
        json.dump(report, sys.stdout, indent=2)
        print()
    else:
        print_report(report)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
