#!/usr/bin/env python3
"""gravel_analyze: whole-tree concurrency-discipline analysis for Gravel.

Three checks over src/ (src/verify/ excluded — the model-checker shim is
the one place allowed to bend the rules, and it is checked by its own
model-checking tests instead):

  lock-order   Extract every lock acquisition (gravel::lock_guard
               declarations), build the "A held while acquiring B" digraph
               intra- and inter-procedurally, and reject cycles. The graph
               is emitted as DOT (--dot) so the lock hierarchy is a
               reviewable artifact.

  pairing      Every memory_order_release / memory_order_acq_rel store
               site must carry a ``// pairs-with: <tag>`` comment (same
               line or one of the two preceding lines) naming its acquire
               partner(s); every such tag must also appear next to at
               least one acquire-side load. Cross-checked both directions
               so a renamed or deleted partner is caught. Comments are
               not in the AST, so this check is textual in both engines.

  hot-path     Functions defined in files marked ``// gravel-lint:
               hot-path`` must not allocate, lock, or issue blocking
               syscalls — directly or through callees modeled in the same
               tree. Constructors/destructors are exempt (setup happens
               before concurrency starts), and a function annotated with
               ``// gravel-analyze: cold`` immediately above its
               definition is an audited slow path: it is skipped and
               calls into it do not taint callers (e.g. once-per-thread
               registration that allocates a ring).

Engines:
  internal   dependency-free lexical model (always available; the one the
             repo's own tests run);
  libclang   AST-backed model via the python clang bindings over
             compile_commands.json (CI installs them);
  auto       libclang when importable and working, else internal. Any
             libclang failure falls back rather than failing the build.

Exit status: 0 = clean, 1 = findings, 2 = usage/environment error.

Usage:
  tools/gravel_analyze.py --root . --dot build/lock_order.dot \
      --pairing-report build/pairing_report.txt
  tools/gravel_analyze.py --self-test
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

# --------------------------------------------------------------------------
# Shared lexical helpers
# --------------------------------------------------------------------------

HOT_PATH_MARKER = "gravel-lint: hot-path"
COLD_MARKER = "gravel-analyze: cold"
PAIRS_RE = re.compile(r"//\s*pairs-with:\s*([A-Za-z0-9_.,\- ]+)")
RELEASE_RE = re.compile(r"memory_order_(?:release|acq_rel)\b")
ACQUIRE_RE = re.compile(r"memory_order_(?:acquire|acq_rel)\b")
DEFAULT_ARG_RE = re.compile(r"=\s*std::memory_order_")

# Tokens that mean "this function is not hot-path pure".
ALLOC_RE = re.compile(
    r"\bnew\b(?!\s*\()"  # placement new is still new; `new (` caught too
    r"|\bnew\s*\("
    r"|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\("
    r"|make_unique\s*<|make_shared\s*<"
    r"|\.push_back\s*\(|\.emplace_back\s*\(|\.emplace\s*\("
    r"|\.resize\s*\(|\.reserve\s*\(|\.assign\s*\("
    r"|std::to_string\s*\(|\bstosd\b"
)
LOCKING_RE = re.compile(
    r"\block_guard\b|\bscoped_lock\b|\bunique_lock\b|\.lock\s*\(\)"
    r"|condition_variable"
)
SYSCALL_RE = re.compile(
    r"\bfopen\s*\(|\bfclose\s*\(|\bfread\s*\(|\bfwrite\s*\("
    r"|\bprintf\s*\(|\bfprintf\s*\(|std::cout|std::cerr"
    r"|\bgetenv\s*\(|\bsystem\s*\(|\bsleep_for\b|\bsleep_until\b"
    r"|\busleep\s*\(|\bofstream\b|\bifstream\b"
)

# Call names too generic to unify against the model by bare name.
CALL_STOPLIST = frozenset(
    """size empty begin end clear data load store exchange fetch_add fetch_sub
    compare_exchange_weak compare_exchange_strong count find insert erase
    push_back emplace_back pop_front front back reserve resize assign swap
    get reset release lock unlock min max at value name str c_str append
    wait notify_one notify_all join detach joinable now if while for switch
    return sizeof alignof decltype static_cast dynamic_cast const_cast
    reinterpret_cast uint32_t uint64_t int64_t size_t memcpy memset move
    forward make_pair make_tuple to_string abs duration_cast defined assert
    GRAVEL_CHECK GRAVEL_CHECK_MSG""".split()
)


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines and
    column positions so line/offset bookkeeping stays valid."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join("\n" if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            q = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == q:
                    j += 1
                    break
                if text[j] == "\n":  # unterminated (macro line); stop at EOL
                    break
                j += 1
            out.append(q + " " * (j - i - 2) + (q if j <= n and j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    s = "".join(out)
    assert len(s) == len(text)
    return s


class Finding:
    def __init__(self, check: str, path: str, line: int, message: str):
        self.check = check
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


# --------------------------------------------------------------------------
# Internal engine: lexical function model
# --------------------------------------------------------------------------

# A function definition header: optional qualifiers, a name (possibly
# Class::name), an argument list, then (after optional specifiers) '{'.
FUNC_HEAD_RE = re.compile(
    r"(~?[A-Za-z_][A-Za-z0-9_]*(?:\s*::\s*~?[A-Za-z_][A-Za-z0-9_]*)*)\s*\("
)
CLASS_RE = re.compile(r"\b(?:class|struct)\s+(?:GRAVEL_\w+(?:\([^)]*\))?\s+)*([A-Za-z_]\w*)")
LOCK_DECL_RE = re.compile(
    r"\b(?:gravel::)?lock_guard\s+\w+\s*[({]\s*([^;]+?)\s*[)}]\s*;"
)
REF_DECL_RE = re.compile(
    r"\b(?:const\s+)?([A-Za-z_][\w:]*)\s*&\s*([A-Za-z_]\w*)\s*=")
RANGE_FOR_RE = re.compile(
    r"for\s*\(\s*(?:const\s+)?([A-Za-z_][\w:]*)\s*&\s*([A-Za-z_]\w*)\s*:"
    r"\s*([A-Za-z_]\w*)")
PARAM_REF_RE = re.compile(
    r"(?:const\s+)?([A-Za-z_][\w:]*)\s*&\s*([A-Za-z_]\w*)\s*(?:,|$|\))")
MEMBER_VEC_RE = re.compile(
    r"\bstd::(?:vector|deque|array)\s*<\s*([A-Za-z_][\w:]*)\s*(?:,[^>]*)?>\s+"
    r"([A-Za-z_]\w*)\s*(?:;|\{|=|GRAVEL_)")
CALL_RE = re.compile(r"(?:([A-Za-z_]\w*)\s*(?:\.|->)\s*)?([A-Za-z_]\w*)\s*\(")


class FuncModel:
    def __init__(self, qualname, cls, path, line, cold, is_ctor):
        self.qualname = qualname      # Class::name or name
        self.name = qualname.split("::")[-1]
        self.cls = cls                # enclosing/owning class or None
        self.path = path
        self.line = line
        self.cold = cold
        self.is_ctor = is_ctor
        self.locks = []               # [(lock_id, order_index, line)]
        self.calls = []               # [(receiver_cls|None, name, held_ids, line)]
        self.impure = []              # [(kind, token, line)]
        self.acquires_all = set()     # transitive lock ids (filled later)


def parse_functions(path: str, text: str):
    """Build FuncModels for one file with a brace-depth scanner."""
    code = strip_comments_and_strings(text)
    raw_lines = text.splitlines()
    lines = code.splitlines()
    funcs = []

    # Class context by brace depth: depth -> class name entered at that depth.
    class_stack = []  # (name, depth_at_open)
    depth = 0
    i = 0  # line index
    member_vecs = {}  # container member -> element class (file-global approx)
    for m in MEMBER_VEC_RE.finditer(code):
        member_vecs[m.group(2)] = m.group(1).split("::")[-1]

    pending_class = None
    current_func = None  # (FuncModel, open_depth, body_lines, lock_scopes)

    def line_of(offset):
        return code.count("\n", 0, offset) + 1

    # Scan token-ish by lines to keep it simple and robust.
    n_lines = len(lines)
    while i < n_lines:
        line = lines[i]
        stripped = line.strip()

        if current_func is None:
            cm = CLASS_RE.search(line)
            if cm and "{" in line[cm.end():] + (lines[i + 1] if i + 1 < n_lines else ""):
                pending_class = cm.group(1)
            # Function definition heuristic: header with '(' and an opening
            # '{' on this or a continuation line, at class or namespace scope.
            fm = FUNC_HEAD_RE.search(line)
            if fm and not stripped.startswith("#"):
                name = re.sub(r"\s+", "", fm.group(1))
                # Look ahead for '{' before ';' to distinguish definition
                # from declaration/call. Cap the lookahead.
                j = i
                seen = ""
                found_body = False
                while j < n_lines and j < i + 8:
                    seen += lines[j] + "\n"
                    body_at = _body_open(seen, fm.start() if j == i else 0)
                    if body_at is not None:
                        found_body = True
                        break
                    if ";" in lines[j][fm.end():] if j == i else ";" in lines[j]:
                        break
                    j += 1
                if found_body and _looks_like_definition(line, stripped, name):
                    cls = class_stack[-1][0] if class_stack else None
                    qual = name if "::" in name else (
                        f"{cls}::{name}" if cls else name)
                    base = qual.split("::")[-1]
                    owner = qual.split("::")[0] if "::" in qual else None
                    is_ctor = base.lstrip("~") == (owner or "")
                    cold = _marked_cold(raw_lines, i)
                    f = FuncModel(qual, owner, path, i + 1, cold, is_ctor)
                    current_func = [f, depth, [], []]
        # Track braces & collect body lines.
        for ch in line:
            if ch == "{":
                depth += 1
                if pending_class:
                    class_stack.append((pending_class, depth))
                    pending_class = None
            elif ch == "}":
                if class_stack and class_stack[-1][1] == depth:
                    class_stack.pop()
                depth -= 1
                if current_func and depth <= current_func[1]:
                    _finish_func(current_func, member_vecs)
                    funcs.append(current_func[0])
                    current_func = None
        if current_func is not None:
            current_func[2].append((i + 1, line))
        i += 1
    return funcs


def _body_open(seen: str, start: int):
    """Offset of the '{' opening the function body, or None."""
    # Skip the argument list: find the matching ')' for the first '(' after
    # start, then accept a '{' that follows (possibly after const/noexcept/
    # attributes/initializer list).
    p = seen.find("(", start)
    if p < 0:
        return None
    bal = 0
    q = p
    while q < len(seen):
        if seen[q] == "(":
            bal += 1
        elif seen[q] == ")":
            bal -= 1
            if bal == 0:
                break
        q += 1
    else:
        return None
    tail = seen[q + 1:]
    b = tail.find("{")
    s = tail.find(";")
    if b >= 0 and (s < 0 or b < s):
        return q + 1 + b
    return None


def _looks_like_definition(line: str, stripped: str, name: str) -> bool:
    if name.split("::")[-1] in ("if", "for", "while", "switch", "catch",
                                "return", "sizeof", "defined"):
        return False
    if name.split("::")[-1].endswith("_"):
        return False  # members end with '_' here: a ctor init-list entry
    # Calls are statements: `foo(...);` with no leading type tokens. A
    # definition line either starts with the name (ctor) or has preceding
    # type tokens / qualifiers. Heuristic: reject lines that end with ');'
    # on the same line AND start with the call itself.
    if stripped.startswith((name + "(", name + " (")):
        # Could be a constructor definition (Name(...) : init {) — keep if
        # the line has no trailing ';'.
        return ";" not in stripped
    return True


def _marked_cold(raw_lines, idx) -> bool:
    for k in range(max(0, idx - 3), idx):
        if COLD_MARKER in raw_lines[k]:
            return True
    return False


def _finish_func(entry, member_vecs):
    f, _, body, _ = entry
    text = "\n".join(t for _, t in body)
    # Local reference declarations + range-for refs + reference parameters
    # -> var type map. `auto&` resolves through the member-container map.
    var_types = {}
    for m in REF_DECL_RE.finditer(text):
        ty = m.group(1).split("::")[-1]
        if ty == "auto":
            rhs = text[m.end():].lstrip()
            rm = re.match(r"([A-Za-z_]\w*)\s*\[", rhs)
            if rm and rm.group(1) in member_vecs:
                ty = member_vecs[rm.group(1)]
            else:
                continue
        var_types[m.group(2)] = ty
    for m in RANGE_FOR_RE.finditer(text):
        ty = m.group(1).split("::")[-1]
        if ty == "auto":
            ty = member_vecs.get(m.group(3))
            if ty is None:
                continue
        var_types[m.group(2)] = ty
    header = body[0][1] if body else ""
    for m in PARAM_REF_RE.finditer(header):
        var_types.setdefault(m.group(2), m.group(1).split("::")[-1])

    def lock_id(expr: str) -> str:
        e = expr.strip().lstrip("*&").strip()
        e = re.sub(r"\[[^\]]*\]", "", e)  # drop subscripts
        parts = re.split(r"\.|->", e)
        parts = [p.strip() for p in parts if p.strip()]
        if not parts:
            return "?"
        member = parts[-1]
        if len(parts) == 1:
            owner = f.cls or "?"
            return f"{owner}::{member}"
        first = parts[0]
        owner = var_types.get(first)
        if owner is None and first in member_vecs:
            owner = member_vecs[first]
        if owner is None and (f.cls is not None) and len(parts) == 2:
            # member-of-member: resolve through the container map if the
            # first component is a known container member of this class.
            owner = member_vecs.get(first)
        return f"{owner or '?'}::{member}"

    # Lock scopes: (lock_id, brace_depth_at_decl). A guard dies when the
    # brace depth drops below the depth it was declared at. Brace events
    # and declarations/calls on one line are processed in column order so
    # `if (x) { guard lk(m); ... }` scopes correctly.
    active = []
    order = 0
    depth = 0
    for lineno, line in body:
        events = []  # (column, kind, payload)
        for m in LOCK_DECL_RE.finditer(line):
            events.append((m.start(), "lock", m.group(1)))
        for m in CALL_RE.finditer(line):
            recv, name = m.group(1), m.group(2)
            if name in CALL_STOPLIST or len(name) < 3:
                continue
            events.append((m.start(), "call", (recv, name)))
        for col, ch in enumerate(line):
            if ch in "{}":
                events.append((col, ch, None))
        events.sort(key=lambda e: e[0])
        for _col, kind, payload in events:
            if kind == "{":
                depth += 1
            elif kind == "}":
                depth -= 1
                active = [(lid, d) for lid, d in active if d <= depth]
            elif kind == "lock":
                lid = lock_id(payload)
                f.locks.append((lid, order, lineno,
                                tuple(a for a, _ in active)))
                active.append((lid, depth))
                order += 1
            else:  # call
                recv, name = payload
                recv_cls = var_types.get(recv) if recv else None
                f.calls.append((recv_cls, name,
                                tuple(a for a, _ in active), lineno))
        for kind, rex in (("alloc", ALLOC_RE), ("lock", LOCKING_RE),
                          ("syscall", SYSCALL_RE)):
            for m in rex.finditer(line):
                f.impure.append((kind, m.group(0).strip(), lineno))


# --------------------------------------------------------------------------
# libclang engine (CI): same model, AST-backed
# --------------------------------------------------------------------------

def parse_functions_libclang(root: str, compdb_dir: str):
    """AST-backed FuncModel extraction. Raises on any environment problem;
    callers under --engine auto fall back to the internal engine."""
    from clang import cindex  # noqa: PLC0415  (optional dependency)

    index = cindex.Index.create()
    compdb = cindex.CompilationDatabase.fromDirectory(compdb_dir)
    funcs = []
    seen_files = set()

    def lock_type(t) -> bool:
        return "lock_guard" in t.spelling or "scoped_lock" in t.spelling

    for cmd in compdb.getAllCompileCommands():
        src = os.path.normpath(os.path.join(cmd.directory, cmd.filename))
        if not src.startswith(os.path.join(root, "src")) or "verify" in src:
            continue
        if src in seen_files:
            continue
        seen_files.add(src)
        args = [a for a in list(cmd.arguments)[1:-1] if a != "-c"]
        tu = index.parse(src, args=args)
        for cur in tu.cursor.walk_preorder():
            if cur.kind not in (cindex.CursorKind.CXX_METHOD,
                                cindex.CursorKind.FUNCTION_DECL,
                                cindex.CursorKind.CONSTRUCTOR,
                                cindex.CursorKind.DESTRUCTOR):
                continue
            if not cur.is_definition() or cur.location.file is None:
                continue
            fpath = os.path.normpath(cur.location.file.name)
            if not fpath.startswith(os.path.join(root, "src")):
                continue
            cls = (cur.semantic_parent.spelling
                   if cur.semantic_parent and cur.semantic_parent.kind in (
                       cindex.CursorKind.CLASS_DECL,
                       cindex.CursorKind.STRUCT_DECL) else None)
            qual = f"{cls}::{cur.spelling}" if cls else cur.spelling
            raw = open(fpath, encoding="utf-8", errors="replace").read()
            raw_lines = raw.splitlines()
            f = FuncModel(qual, cls, os.path.relpath(fpath, root),
                          cur.extent.start.line,
                          _marked_cold(raw_lines, cur.extent.start.line - 1),
                          cur.kind in (cindex.CursorKind.CONSTRUCTOR,
                                       cindex.CursorKind.DESTRUCTOR))
            held = []
            for node in cur.walk_preorder():
                if (node.kind == cindex.CursorKind.VAR_DECL
                        and lock_type(node.type)):
                    lid = _clang_lock_id(node, cls)
                    f.locks.append((lid, len(f.locks), node.location.line,
                                    tuple(held)))
                    held.append(lid)
                elif node.kind == cindex.CursorKind.CALL_EXPR:
                    ref = node.referenced
                    if ref is None or not ref.spelling:
                        continue
                    rcls = (ref.semantic_parent.spelling
                            if ref.semantic_parent and ref.semantic_parent.kind
                            in (cindex.CursorKind.CLASS_DECL,
                                cindex.CursorKind.STRUCT_DECL) else None)
                    f.calls.append((rcls, ref.spelling, tuple(held),
                                    node.location.line))
                    if ref.spelling in ("operator new", "malloc", "calloc"):
                        f.impure.append(("alloc", ref.spelling,
                                         node.location.line))
                elif node.kind == cindex.CursorKind.CXX_NEW_EXPR:
                    f.impure.append(("alloc", "new", node.location.line))
            # Token-level impurity sweep over the function extent keeps the
            # two engines' verdicts aligned.
            ext = raw_lines[cur.extent.start.line - 1:cur.extent.end.line]
            for off, line in enumerate(ext):
                for kind, rex in (("alloc", ALLOC_RE), ("lock", LOCKING_RE),
                                  ("syscall", SYSCALL_RE)):
                    for m in rex.finditer(line):
                        f.impure.append((kind, m.group(0).strip(),
                                         cur.extent.start.line + off))
            funcs.append(f)
    if not funcs:
        raise RuntimeError("libclang produced an empty model")
    return funcs


def _clang_lock_id(node, cls):
    # Best effort: last member reference inside the initializer.
    member = None
    owner = None
    for ch in node.walk_preorder():
        if ch.kind.name == "MEMBER_REF_EXPR":
            member = ch.spelling
            if ch.referenced is not None and ch.referenced.semantic_parent:
                owner = ch.referenced.semantic_parent.spelling
        elif ch.kind.name == "DECL_REF_EXPR" and member is None:
            member = ch.spelling
    return f"{owner or cls or '?'}::{member or '?'}"


# --------------------------------------------------------------------------
# Check (a): lock-order DAG
# --------------------------------------------------------------------------

def build_lock_graph(funcs):
    """Edges (A, B, site) meaning: lock B acquired while A is held."""
    by_name = {}
    for f in funcs:
        by_name.setdefault(f.name, []).append(f)
    by_qual = {f.qualname: f for f in funcs}

    # Pass 1: direct acquisition summaries.
    for f in funcs:
        f.acquires_all = {lid for lid, *_ in f.locks}
    # Fixpoint: propagate callee acquisitions (receiver-resolved, else
    # unified only when the bare name is unambiguous across the model).
    for _ in range(10):
        changed = False
        for f in funcs:
            for recv_cls, name, _held, _line in f.calls:
                targets = []
                if recv_cls is not None:
                    t = by_qual.get(f"{recv_cls}::{name}")
                    if t is not None:
                        targets = [t]
                else:
                    t = by_qual.get(f"{f.cls}::{name}") if f.cls else None
                    if t is not None:
                        targets = [t]
                    else:
                        cands = by_name.get(name, [])
                        if len(cands) == 1:
                            targets = cands
                for t in targets:
                    if not t.acquires_all <= f.acquires_all:
                        f.acquires_all |= t.acquires_all
                        changed = True
        if not changed:
            break

    edges = {}
    by_qual_get = by_qual.get

    def add_edge(a, b, site):
        if a == b:
            return  # self edges (same member on two objects) carry no order
        edges.setdefault((a, b), site)

    for f in funcs:
        for lid, _order, line, held in f.locks:
            for h in held:
                add_edge(h, lid, f"{f.path}:{line} ({f.qualname})")
        for recv_cls, name, held, line in f.calls:
            if not held:
                continue
            targets = []
            if recv_cls is not None:
                t = by_qual_get(f"{recv_cls}::{name}")
                if t is not None:
                    targets = [t]
            else:
                t = by_qual_get(f"{f.cls}::{name}") if f.cls else None
                if t is not None:
                    targets = [t]
                else:
                    cands = by_name.get(name, [])
                    if len(cands) == 1:
                        targets = cands
            for t in targets:
                for lid in t.acquires_all:
                    for h in held:
                        add_edge(h, lid,
                                 f"{f.path}:{line} ({f.qualname} -> "
                                 f"{t.qualname})")
    return edges


def find_cycles(edges):
    graph = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {}
    stack = []
    cycles = []

    def dfs(u):
        color[u] = GRAY
        stack.append(u)
        for v in sorted(graph.get(u, ())):
            if color.get(v, WHITE) == GRAY:
                k = stack.index(v)
                cycles.append(stack[k:] + [v])
            elif color.get(v, WHITE) == WHITE:
                dfs(v)
        stack.pop()
        color[u] = BLACK

    for node in sorted(graph):
        if color.get(node, WHITE) == WHITE:
            dfs(node)
    return cycles


def emit_dot(edges, out):
    nodes = sorted({n for e in edges for n in e})
    out.write("// Lock-order DAG extracted by tools/gravel_analyze.py\n")
    out.write("// Edge A -> B: lock B is acquired while A is held.\n")
    out.write("digraph lock_order {\n  rankdir=LR;\n")
    for n in nodes:
        out.write(f'  "{n}";\n')
    for (a, b), site in sorted(edges.items()):
        out.write(f'  "{a}" -> "{b}" [label="{site}"];\n')
    out.write("}\n")


def check_lock_order(funcs, dot_path=None):
    edges = build_lock_graph(funcs)
    if dot_path:
        with open(dot_path, "w", encoding="utf-8") as fh:
            emit_dot(edges, fh)
    findings = []
    for cyc in find_cycles(edges):
        chain = " -> ".join(cyc)
        site = edges.get((cyc[0], cyc[1]))
        path, line = "(graph)", 0
        if site:
            loc = site.split(" ")[0]
            if ":" in loc:
                path, _, lno = loc.rpartition(":")
                line = int(lno) if lno.isdigit() else 0
        findings.append(Finding(
            "lock-order", path, line,
            f"lock-order cycle: {chain} (first edge at {site})"))
    return findings, edges


# --------------------------------------------------------------------------
# Check (b): release/acquire pairing audit (textual)
# --------------------------------------------------------------------------

def _tags_near(lines, idx, span=2):
    tags = []
    for k in range(max(0, idx - span), idx + 1):
        m = PAIRS_RE.search(lines[k])
        if m:
            tags += [t.strip() for t in m.group(1).split(",") if t.strip()]
    return tags


def check_pairing(files, report_path=None):
    findings = []
    release_tags = {}  # tag -> [site]
    acquire_tags = {}
    for path, text in files:
        lines = text.splitlines()
        for i, line in enumerate(lines):
            code = line.split("//")[0]
            if DEFAULT_ARG_RE.search(code):
                continue  # defaulted memory-order parameter, not a site
            is_rel = RELEASE_RE.search(code)
            is_acq = ACQUIRE_RE.search(code)
            if not (is_rel or is_acq):
                continue
            tags = _tags_near(lines, i)
            site = f"{path}:{i + 1}"
            if is_rel:
                if not tags:
                    findings.append(Finding(
                        "pairing", path, i + 1,
                        "release store without a '// pairs-with: <tag>' "
                        "annotation naming its acquire partner"))
                for t in tags:
                    release_tags.setdefault(t, []).append(site)
            if is_acq and tags:
                for t in tags:
                    acquire_tags.setdefault(t, []).append(site)
    for tag, sites in sorted(release_tags.items()):
        if tag not in acquire_tags:
            findings.append(Finding(
                "pairing", sites[0].rsplit(":", 1)[0],
                int(sites[0].rsplit(":", 1)[1]),
                f"tag '{tag}' has release site(s) but no annotated acquire "
                f"partner ({', '.join(sites)})"))
    for tag, sites in sorted(acquire_tags.items()):
        if tag not in release_tags:
            findings.append(Finding(
                "pairing", sites[0].rsplit(":", 1)[0],
                int(sites[0].rsplit(":", 1)[1]),
                f"tag '{tag}' has acquire site(s) but no release partner "
                f"({', '.join(sites)})"))
    if report_path:
        with open(report_path, "w", encoding="utf-8") as fh:
            fh.write("release/acquire pairing report "
                     "(tools/gravel_analyze.py)\n\n")
            for tag in sorted(set(release_tags) | set(acquire_tags)):
                fh.write(f"{tag}\n")
                for s in release_tags.get(tag, []):
                    fh.write(f"  release {s}\n")
                for s in acquire_tags.get(tag, []):
                    fh.write(f"  acquire {s}\n")
            if findings:
                fh.write("\nFINDINGS\n")
                for f in findings:
                    fh.write(f"  {f}\n")
    return findings


# --------------------------------------------------------------------------
# Check (c): hot-path purity
# --------------------------------------------------------------------------

def check_hot_path(funcs, files):
    hot_files = {path for path, text in files if HOT_PATH_MARKER in text}
    findings = []
    by_name = {}
    for f in funcs:
        by_name.setdefault(f.name, []).append(f)
    by_qual = {f.qualname: f for f in funcs}

    def resolve(f, recv_cls, name):
        if recv_cls is not None:
            return by_qual.get(f"{recv_cls}::{name}")
        t = by_qual.get(f"{f.cls}::{name}") if f.cls else None
        if t is not None:
            return t
        cands = by_name.get(name, [])
        return cands[0] if len(cands) == 1 else None

    def first_impurity(f, seen):
        """(kind, token, path, line) or None; cold callees cut the search."""
        if f.qualname in seen:
            return None
        seen.add(f.qualname)
        if f.impure:
            kind, token, line = f.impure[0]
            return kind, token, f.path, line
        for recv_cls, name, _held, line in f.calls:
            t = resolve(f, recv_cls, name)
            if t is None or t.cold or t.is_ctor:
                continue
            hit = first_impurity(t, seen)
            if hit:
                kind, token, _p, _l = hit
                return kind, f"{name}() -> {token}", f.path, line
        return None

    for f in funcs:
        if f.path not in hot_files or f.cold or f.is_ctor:
            continue
        hit = first_impurity(f, set())
        if hit:
            kind, token, path, line = hit
            findings.append(Finding(
                "hot-path", f.path, f.line,
                f"{f.qualname} is in a hot-path file but reaches "
                f"{kind} ('{token}' at {path}:{line}); mark the function "
                f"'// {COLD_MARKER}' if it is an audited slow path"))
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def collect_files(root):
    out = []
    src = os.path.join(root, "src")
    for dirpath, _dirs, names in os.walk(src):
        if os.path.basename(dirpath) == "verify":
            continue
        for name in sorted(names):
            if not name.endswith((".hpp", ".cpp", ".h", ".cc")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            with open(path, encoding="utf-8", errors="replace") as fh:
                out.append((rel, fh.read()))
    return out


def build_model(root, engine, compdb_dir):
    if engine in ("libclang", "auto"):
        try:
            return parse_functions_libclang(root, compdb_dir), "libclang"
        except Exception as exc:  # noqa: BLE001 — fall back on anything
            if engine == "libclang":
                print(f"gravel_analyze: libclang engine failed: {exc}",
                      file=sys.stderr)
                sys.exit(2)
            print(f"gravel_analyze: libclang unavailable ({exc.__class__.__name__}); "
                  "using internal engine", file=sys.stderr)
    funcs = []
    for rel, text in collect_files(root):
        funcs.extend(parse_functions(rel, text))
    return funcs, "internal"


def run_checks(root, checks, engine, compdb_dir, dot_path, report_path):
    files = collect_files(root)
    findings = []
    if "pairing" in checks:
        findings += check_pairing(files, report_path)
    if "lock-order" in checks or "hot-path" in checks:
        funcs, used = build_model(root, engine, compdb_dir)
        if "lock-order" in checks:
            fs, _edges = check_lock_order(funcs, dot_path)
            findings += fs
        if "hot-path" in checks:
            findings += check_hot_path(funcs, files)
    return findings


# --------------------------------------------------------------------------
# Self-test: each check must fire on a seeded violation and stay quiet on
# the clean twin.
# --------------------------------------------------------------------------

SELFTEST_CYCLE = """
#include "common/atomic.hpp"
struct Pair {
  gravel::mutex a;
  gravel::mutex b;
  int x = 0;
  void ab() {
    gravel::lock_guard la(a);
    gravel::lock_guard lb(b);
    ++x;
  }
  void ba() {
    gravel::lock_guard lb(b);
    gravel::lock_guard la(a);
    --x;
  }
};
"""

SELFTEST_CYCLE_CLEAN = """
#include "common/atomic.hpp"
struct Pair {
  gravel::mutex a;
  gravel::mutex b;
  int x = 0;
  void ab() {
    gravel::lock_guard la(a);
    gravel::lock_guard lb(b);
    ++x;
  }
  void abAgain() {
    gravel::lock_guard la(a);
    gravel::lock_guard lb(b);
    --x;
  }
};
"""

SELFTEST_CYCLE_INTERPROC = """
#include "common/atomic.hpp"
struct Deep {
  gravel::mutex outer;
  gravel::mutex inner;
  void takeInner() {
    gravel::lock_guard li(inner);
  }
  void holdOuterCallInner() {
    gravel::lock_guard lo(outer);
    takeInner();
  }
  void holdInnerTakeOuter() {
    gravel::lock_guard li(inner);
    gravel::lock_guard lo(outer);
  }
};
"""

SELFTEST_PAIRING = """
#include "common/atomic.hpp"
struct Flag {
  gravel::atomic<bool> ready{false};
  gravel::atomic<int> data{0};
  void publishBad() {
    ready.store(true, std::memory_order_release);
  }
  void publishGood() {
    ready.store(true, std::memory_order_release);  // pairs-with: st.ready
  }
  bool consumeGood() {
    return ready.load(std::memory_order_acquire);  // pairs-with: st.ready
  }
  int orphanAcquire() {
    return data.load(std::memory_order_acquire);  // pairs-with: st.orphan
  }
};
"""

SELFTEST_HOT = """
// gravel-lint: hot-path
#include "common/atomic.hpp"
struct Ring {
  int* slots = nullptr;
  gravel::atomic<int> head{0};
  Ring() { slots = new int[64]; }
  void hotButAllocates() {
    int* p = new int(7);
    head.store(*p, std::memory_order_relaxed);
  }
  void hotClean(int v) {
    head.store(v, std::memory_order_relaxed);
  }
  // gravel-analyze: cold
  void coldDump() {
    int* copy = new int[64];
    delete[] copy;
  }
  void hotViaHelper() {
    helperThatAllocates();
  }
  void helperThatAllocates() {
    int* p = new int(9);
    head.store(*p, std::memory_order_relaxed);
  }
  void hotViaColdHelper() {
    coldDump();
  }
};
"""


def self_test():
    failures = []

    def expect(cond, what):
        print(("  ok   " if cond else "  FAIL ") + what)
        if not cond:
            failures.append(what)

    with tempfile.TemporaryDirectory(prefix="gravel_analyze_st") as tmp:
        srcdir = os.path.join(tmp, "src", "st")
        os.makedirs(srcdir)

        def write(name, content):
            with open(os.path.join(srcdir, name), "w",
                      encoding="utf-8") as fh:
                fh.write(content)

        write("cycle.hpp", SELFTEST_CYCLE)
        write("cycle_clean.hpp", SELFTEST_CYCLE_CLEAN)
        write("cycle_interproc.hpp", SELFTEST_CYCLE_INTERPROC)
        write("pairing.hpp", SELFTEST_PAIRING)
        write("hot.hpp", SELFTEST_HOT)

        files = collect_files(tmp)
        funcs = []
        for rel, text in files:
            funcs.extend(parse_functions(rel, text))

        print("lock-order:")
        cyc_funcs = [f for f in funcs if "cycle.hpp" in f.path]
        fs, edges = check_lock_order(cyc_funcs)
        expect(any("cycle" in f.message for f in fs),
               "direct a/b vs b/a inversion is reported")
        clean = [f for f in funcs if "cycle_clean" in f.path]
        fs, edges = check_lock_order(clean)
        expect(not fs, "consistent ordering stays quiet")
        inter = [f for f in funcs if "interproc" in f.path]
        fs, edges = check_lock_order(inter)
        expect(any("cycle" in f.message for f in fs),
               "inversion through a callee is reported (interprocedural)")
        expect(("Deep::outer", "Deep::inner") in edges,
               "call-graph propagation records outer->inner edge")

        print("pairing:")
        fs = check_pairing([(p, t) for p, t in files if "pairing" in p])
        expect(any("without a" in f.message for f in fs),
               "unannotated release store is reported")
        expect(any("st.orphan" in f.message for f in fs),
               "acquire tag without a release partner is reported")
        expect(not any("st.ready" in f.message for f in fs),
               "properly paired tag stays quiet")

        print("hot-path:")
        hot_files = [(p, t) for p, t in files if "hot.hpp" in p]
        hot_funcs = [f for f in funcs if "hot.hpp" in f.path]
        fs = check_hot_path(hot_funcs, hot_files)
        msgs = "\n".join(f.message for f in fs)
        expect("hotButAllocates" in msgs, "direct allocation is reported")
        expect("hotViaHelper" in msgs,
               "allocation through a helper is reported (interprocedural)")
        expect("hotClean" not in msgs, "clean hot function stays quiet")
        expect("coldDump" not in msgs.split("hotViaColdHelper")[0]
               or "Ring::coldDump is" not in msgs,
               "cold-marked function itself is exempt")
        expect("hotViaColdHelper" not in msgs,
               "calls into cold-marked slow paths do not taint callers")
        expect("Ring::Ring" not in msgs, "constructors are exempt")

    if failures:
        print(f"self-test: {len(failures)} FAILED")
        return 1
    print("self-test: all checks fire on seeded violations and stay quiet "
          "on clean twins")
    return 0


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".",
                    help="repository root (contains src/)")
    ap.add_argument("--engine", choices=("auto", "libclang", "internal"),
                    default="auto")
    ap.add_argument("--compdb", default="build",
                    help="directory containing compile_commands.json "
                         "(libclang engine)")
    ap.add_argument("--check", action="append",
                    choices=("lock-order", "pairing", "hot-path"),
                    help="run only the named check (repeatable; default all)")
    ap.add_argument("--dot", help="write the lock-order DAG here")
    ap.add_argument("--pairing-report", help="write the pairing report here")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()

    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"gravel_analyze: no src/ under {root}", file=sys.stderr)
        return 2
    checks = args.check or ["lock-order", "pairing", "hot-path"]
    findings = run_checks(root, checks, args.engine, args.compdb,
                          args.dot, args.pairing_report)
    for f in findings:
        print(f)
    print(f"gravel_analyze: {len(findings)} finding(s) "
          f"[checks: {', '.join(checks)}]")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
