#!/usr/bin/env python3
"""Concurrency lint for the Gravel tree (DESIGN.md §8).

Rules
-----
naked-atomic
    ``std::atomic<...>`` / ``std::atomic_flag`` may only appear in the shim
    home (src/common/atomic.hpp) and the verification layer (src/verify/).
    Product code must use ``gravel::atomic`` so the model checker can
    instrument it. ``std::atomic_ref`` is allowed everywhere: it adapts
    plain memory the symmetric heap hands out and has no gravel wrapper.

implicit-order
    Every atomic operation (.load/.store/.exchange/.fetch_*/
    .compare_exchange_*/.test_and_set) must name an explicit memory order —
    either a ``std::memory_order_*`` constant or a forwarded ``order``
    parameter. The default seq_cst hides the author's intent and defeats
    the mutation self-test's site accounting. The shim home is exempt —
    it forwards caller-supplied orders under the name ``mo``.

hot-path-blocking
    Files marked ``// gravel-lint: hot-path`` (the lock-free queues) must
    not take locks, sleep, or call the raw OS yield. Spin loops there go
    through ``gravel::spinYield()`` so the model checker can intercept
    them.

unclassified-hot-path
    Drift gate: every header under src/queue/ or src/obs/ that uses
    atomics must either carry the ``gravel-lint: hot-path`` marker (or be
    pinned in HOT_PATH_FILES) or be explicitly classified with
    ``// gravel-lint: cold-path`` (sampler/collector cadence, audited by
    hand). A new atomics-bearing header cannot silently dodge the
    hot-path rules and tools/gravel_analyze.py's purity check.

Suppress a finding with ``// gravel-lint: allow(<rule>)`` on the same line.

Usage:
    lint_concurrency.py <repo-root>     lint src/ of the given tree
    lint_concurrency.py --self-test     prove the rules fire on violations

Exit status: 0 clean, 1 findings, 2 usage/self-test failure.
"""

from __future__ import annotations

import re
import sys
import tempfile
from pathlib import Path

HOT_PATH_MARKER = "gravel-lint: hot-path"
COLD_PATH_MARKER = "gravel-lint: cold-path"
# Files (relative to the scanned root) that are hot-path REGARDLESS of the
# marker. The queue dequeue/enqueue paths and the observability record path
# run on every message of every runtime thread, so a dropped marker comment
# must not silently exempt them.
HOT_PATH_FILES = (
    "queue/gravel_queue.hpp",
    "queue/mpmc_queue.hpp",
    "queue/spsc_queue.hpp",
    "obs/flight_recorder.hpp",
    "obs/latency.hpp",
    "obs/watchdog.hpp",
    "obs/profiler.hpp",
)
# Directories whose headers are covered by the classification drift gate:
# an atomics-bearing header here must be hot-path or explicitly cold-path.
CLASSIFIED_DIRS = ("queue/", "obs/")
ATOMIC_USE_RE = re.compile(r"\batomic\s*<|\batomic_flag\b|\batomic_ref\b")
ALLOW_RE = re.compile(r"gravel-lint:\s*allow\(([a-z-]+)\)")

NAKED_ATOMIC_RE = re.compile(r"std::atomic\s*<|std::atomic_flag\b")
# Files (relative to the scanned root) that ARE the instrumentation: the
# shim home and the verification layer. Exempt from the atomic rules —
# they wrap std::atomic and forward caller-supplied orders (named `mo`).
SHIM_HOME = (
    "common/atomic.hpp",
    "verify/",
)

ATOMIC_OP_RE = re.compile(
    r"\.(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or"
    r"|fetch_xor|compare_exchange_weak|compare_exchange_strong"
    r"|test_and_set)\s*\("
)
ORDER_OK_RE = re.compile(r"memory_order|\border\b")

BLOCKING_RE = re.compile(
    r"std::mutex\b|gravel::mutex\b|std::shared_mutex\b|condition_variable"
    r"|scoped_lock|lock_guard|unique_lock|sleep_for|sleep_until|\busleep\s*\("
    r"|this_thread::yield"
)

LINE_COMMENT_RE = re.compile(r"//.*$")


def strip_block_comments(text: str) -> str:
    """Blank out /* ... */ runs, preserving line structure."""
    out = []
    i = 0
    while i < len(text):
        start = text.find("/*", i)
        if start < 0:
            out.append(text[i:])
            break
        out.append(text[i:start])
        end = text.find("*/", start + 2)
        if end < 0:
            end = len(text)
        out.append("".join(c if c == "\n" else " " for c in text[start:end + 2]))
        i = end + 2
    return "".join(out)


def call_args(lines: list[str], row: int, col: int, max_rows: int = 8) -> str:
    """Text of the parenthesized argument list opening at lines[row][col]."""
    depth = 0
    collected = []
    for r in range(row, min(row + max_rows, len(lines))):
        segment = lines[r][col:] if r == row else lines[r]
        for ch in segment:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    collected.append(ch)
                    return "".join(collected)
            collected.append(ch)
    return "".join(collected)  # unbalanced within window; judge what we saw


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def allowed(raw_line: str, rule: str) -> bool:
    m = ALLOW_RE.search(raw_line)
    return bool(m) and m.group(1) == rule


def lint_file(path: Path, rel: str) -> list[Finding]:
    raw = path.read_text(errors="replace")
    raw_lines = raw.splitlines()
    text = strip_block_comments(raw)
    lines = [LINE_COMMENT_RE.sub("", ln) for ln in text.splitlines()]
    hot_path = HOT_PATH_MARKER in raw or rel in HOT_PATH_FILES
    findings: list[Finding] = []

    atomic_exempt = any(
        rel == e or (e.endswith("/") and rel.startswith(e))
        for e in SHIM_HOME
    )

    for i, line in enumerate(lines):
        lineno = i + 1
        raw_line = raw_lines[i] if i < len(raw_lines) else ""

        if not atomic_exempt and NAKED_ATOMIC_RE.search(line):
            if not allowed(raw_line, "naked-atomic"):
                findings.append(Finding(
                    path, lineno, "naked-atomic",
                    "use gravel::atomic from common/atomic.hpp so the "
                    "verification shim can instrument this"))

        for m in ATOMIC_OP_RE.finditer(line) if not atomic_exempt else ():
            args = call_args(lines, i, m.end() - 1)
            if ORDER_OK_RE.search(args):
                continue
            if allowed(raw_line, "implicit-order"):
                continue
            findings.append(Finding(
                path, lineno, "implicit-order",
                f".{m.group(1)}() without an explicit std::memory_order"))

        if hot_path and BLOCKING_RE.search(line):
            if not allowed(raw_line, "hot-path-blocking"):
                findings.append(Finding(
                    path, lineno, "hot-path-blocking",
                    "locks/sleeps are banned in hot-path files; spin via "
                    "gravel::spinYield()"))

    # Drift gate: a header in a classified directory that uses atomics must
    # either be hot-path (marker or pin) or carry an explicit cold-path
    # classification. Checked after the line loop so the per-line rules
    # above still run on whatever classification the file claims.
    if (path.suffix in (".hpp", ".h")
            and any(rel.startswith(d) for d in CLASSIFIED_DIRS)
            and not hot_path
            and COLD_PATH_MARKER not in raw
            and not atomic_exempt):
        for i, line in enumerate(lines):
            if ATOMIC_USE_RE.search(line):
                raw_line = raw_lines[i] if i < len(raw_lines) else ""
                if not allowed(raw_line, "unclassified-hot-path"):
                    findings.append(Finding(
                        path, i + 1, "unclassified-hot-path",
                        "atomics-bearing header under src/queue|src/obs is "
                        "neither 'gravel-lint: hot-path' (or pinned in "
                        "HOT_PATH_FILES) nor 'gravel-lint: cold-path'"))
                break

    return findings


def lint_tree(root: Path) -> list[Finding]:
    src = root / "src"
    if not src.is_dir():
        print(f"error: {src} is not a directory", file=sys.stderr)
        sys.exit(2)
    findings: list[Finding] = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".hpp", ".cpp", ".h", ".cc"):
            continue
        rel = path.relative_to(src).as_posix()
        findings.extend(lint_file(path, rel))
    return findings


# ---------------------------------------------------------------------------
# Self-test: the lint must fire on each violation class and stay quiet on
# idiomatic code. Run as a ctest so a regressed regex can't silently let
# violations back into the tree.

SELFTEST_CASES = [
    # (filename, contents, expected rule or None)
    ("queue/bad_atomic.hpp",
     "struct S { std::atomic<int> x{0}; };\n",
     "naked-atomic"),
    ("queue/bad_flag.hpp",
     "struct S { std::atomic_flag f; };\n",
     "naked-atomic"),
    ("queue/bad_order.hpp",
     "inline int f(gravel::atomic<int>& a) { return a.load(); }\n",
     "implicit-order"),
    ("queue/bad_order_multiline.hpp",
     "inline void f(gravel::atomic<int>& a) {\n"
     "  a.store(\n      42);\n}\n",
     "implicit-order"),
    ("queue/bad_hot_sleep.hpp",
     "// gravel-lint: hot-path\n"
     "inline void f() { std::this_thread::yield(); }\n",
     "hot-path-blocking"),
    ("queue/bad_hot_lock.hpp",
     "// gravel-lint: hot-path\n"
     "struct S { gravel::mutex m; };\n",
     "hot-path-blocking"),
    ("queue/good.hpp",
     "// gravel-lint: hot-path\n"
     "inline int f(gravel::atomic<int>& a) {\n"
     "  a.store(1, std::memory_order_release);\n"
     "  return a.load(std::memory_order_acquire);\n"
     "}\n",
     None),
    ("queue/good_comment.hpp",
     "// std::atomic<int> in a comment is fine; so is std::mutex here\n"
     "/* std::atomic_flag too */\n",
     None),
    ("runtime/good_allow.hpp",
     "std::atomic<int> migrating;  // gravel-lint: allow(naked-atomic)\n",
     None),
    ("runtime/good_fwd_order.hpp",
     "template <class T>\n"
     "T get(gravel::atomic<T>& a, std::memory_order order) {\n"
     "  return a.load(order);\n"
     "}\n",
     None),
    ("common/atomic.hpp",
     "template <class T> using atomic = std::atomic<T>;\n",
     None),  # shim home is exempt
    ("verify/inner.hpp",
     "std::atomic<bool> aborted{false};\n",
     None),  # verification layer is exempt
    ("verify/fwd_mo.hpp",
     "inline int peek(std::atomic<int>& v, std::memory_order mo) {\n"
     "  return v.load(mo);\n"
     "}\n",
     None),  # shim home forwards orders as `mo`
    ("runtime/good_ref.hpp",
     "std::atomic_ref<unsigned long> r(x);\n",
     None),  # atomic_ref has no gravel wrapper
    ("obs/flight_recorder.hpp",
     "struct S { gravel::mutex m; };\n",
     "hot-path-blocking"),  # listed hot-path file, marker absent
    ("queue/gravel_queue.hpp",
     "struct S { gravel::mutex m; };\n",
     "hot-path-blocking"),  # pinned queue header, marker absent
    ("obs/bad_unclassified.hpp",
     "struct S { gravel::atomic<int> pending{0}; };\n",
     "unclassified-hot-path"),  # atomics, no classification
    ("obs/good_cold.hpp",
     "// gravel-lint: cold-path — sampler cadence only, audited by hand\n"
     "struct S {\n"
     "  gravel::atomic<int> pending{0};\n"
     "  int peek() { return pending.load(std::memory_order_relaxed); }\n"
     "};\n",
     None),  # explicit cold-path classification satisfies the drift gate
    ("queue/bad_unclassified_ref.hpp",
     "inline void bump(unsigned long& x) {\n"
     "  std::atomic_ref<unsigned long> r(x);\n"
     "  r.fetch_add(1, std::memory_order_relaxed);\n"
     "}\n",
     "unclassified-hot-path"),  # atomic_ref counts as atomics use
]


def self_test() -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="gravel_lint_") as tmp:
        root = Path(tmp)
        for name, contents, _ in SELFTEST_CASES:
            p = root / "src" / name
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(contents)
        findings = lint_tree(root)
        by_file = {}
        for f in findings:
            by_file.setdefault(f.path.relative_to(root / "src").as_posix(),
                               set()).add(f.rule)
        for name, _, expected in SELFTEST_CASES:
            got = by_file.get(name, set())
            if expected is None and got:
                print(f"self-test FAIL: {name}: unexpected findings {got}")
                failures += 1
            elif expected is not None and expected not in got:
                print(f"self-test FAIL: {name}: wanted [{expected}], got {got}")
                failures += 1
    if failures:
        return 2
    print(f"self-test OK: {len(SELFTEST_CASES)} cases")
    return 0


def main(argv: list[str]) -> int:
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    findings = lint_tree(Path(argv[1]))
    for f in findings:
        print(f)
    if findings:
        print(f"\n{len(findings)} concurrency lint finding(s)")
        return 1
    print("concurrency lint clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
