#!/usr/bin/env python3
"""Human/flamegraph report over a gravel_profile.json document.

Reads the continuous profiler's export (src/obs/profiler.hpp, served at
/profile and dumped as gravel_profile.json at cluster destruction when
GRAVEL_PROFILE=1): per-thread region-path accumulators with duty-cycle
splits, plus the process-wide named-mutex lock-contention table.

Usage:
    profile_report.py [gravel_profile.json]
    profile_report.py --collapse [gravel_profile.json] > stacks.collapsed
    profile_report.py --check [gravel_profile.json]

Default mode prints three tables: per-thread duty cycles, the top region
paths by self time, and the lock-contention table (acquisitions, contended
count, wait p50/p99).

``--collapse`` emits collapsed-stack lines — ``thread;region;region N``
with N the path's self time in nanoseconds — the exact input format of
flamegraph.pl and speedscope's "collapsed" importer.

``--check`` validates the document's schema (CI's prof-smoke gate): kind,
schema_version, thread/path/lock field shapes, stack depth bounds, and
that busy_ns + idle_ns equals the sum of the thread's path self times.

Exit status: 0 on success, 1 on schema violation (--check) or empty
profile, 2 on usage/parse errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA_VERSION = 1
MAX_DEPTH = 8  # Profiler::kMaxDepth
KNOWN_REGIONS = {
    "agg.slot", "agg.route", "agg.flush", "agg.timer_scan", "net.recv",
    "rel.retransmit", "pool.pump", "monitor.tick", "idle", "bench.slot",
}


def load(path: Path) -> dict:
    try:
        with path.open() as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"profile_report: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def check(doc: dict) -> int:
    """Schema gate. Prints one line per violation; returns the count."""
    errors = []

    def need(cond: bool, msg: str) -> None:
        if not cond:
            errors.append(msg)

    need(doc.get("kind") == "gravel-profile",
         f"kind is {doc.get('kind')!r}, want 'gravel-profile'")
    need(doc.get("schema_version") == SCHEMA_VERSION,
         f"schema_version is {doc.get('schema_version')!r}, "
         f"want {SCHEMA_VERSION}")
    need(isinstance(doc.get("enabled"), bool), "enabled must be a bool")
    need(isinstance(doc.get("lock_profiling"), bool),
         "lock_profiling must be a bool")
    need(isinstance(doc.get("now_ns"), int) and doc.get("now_ns", -1) >= 0,
         "now_ns must be a non-negative integer")
    threads = doc.get("threads")
    need(isinstance(threads, list), "threads must be an array")
    for t in threads if isinstance(threads, list) else []:
        name = t.get("name", "?")
        for field in ("busy_ns", "idle_ns", "dropped"):
            need(isinstance(t.get(field), int) and t.get(field, -1) >= 0,
                 f"thread {name}: {field} must be a non-negative integer")
        need(isinstance(t.get("duty"), (int, float))
             and 0.0 <= t.get("duty", -1) <= 1.0,
             f"thread {name}: duty must be in [0, 1]")
        paths = t.get("paths")
        need(isinstance(paths, list), f"thread {name}: paths must be an array")
        self_total = 0
        for p in paths if isinstance(paths, list) else []:
            stack = p.get("stack")
            need(isinstance(stack, list) and 1 <= len(stack) <= MAX_DEPTH,
                 f"thread {name}: stack depth must be 1..{MAX_DEPTH}")
            for frame in stack if isinstance(stack, list) else []:
                need(frame in KNOWN_REGIONS,
                     f"thread {name}: unknown region {frame!r}")
            for field in ("count", "self_ns"):
                need(isinstance(p.get(field), int) and p.get(field, -1) >= 0,
                     f"thread {name}: path {field} must be a non-negative "
                     "integer")
            if isinstance(p.get("self_ns"), int):
                self_total += p["self_ns"]
        # The duty split is derived from the same rows, so the totals must
        # reconcile exactly (sample() copies each row once).
        if isinstance(t.get("busy_ns"), int) and isinstance(
                t.get("idle_ns"), int):
            need(t["busy_ns"] + t["idle_ns"] == self_total,
                 f"thread {name}: busy+idle ({t['busy_ns'] + t['idle_ns']}) "
                 f"!= sum of path self_ns ({self_total})")
    locks = doc.get("locks")
    need(isinstance(locks, list), "locks must be an array")
    for s in locks if isinstance(locks, list) else []:
        site = s.get("site", "?")
        need(isinstance(s.get("site"), str) and s.get("site"),
             "lock site must be a non-empty string")
        for field in ("acquisitions", "contended", "wait_ns_total"):
            need(isinstance(s.get(field), int) and s.get(field, -1) >= 0,
                 f"lock {site}: {field} must be a non-negative integer")
        # Cross-field lock invariants hold exactly on a quiesced exit dump;
        # a /profile served mid-run reads relaxed counters that may lag
        # each other by in-flight acquisitions, so allow a small skew.
        skew = 64
        need(s.get("contended", 0) <= s.get("acquisitions", 0) + skew,
             f"lock {site}: contended exceeds acquisitions")
        hist = s.get("wait_hist")
        need(isinstance(hist, list)
             and all(isinstance(b, int) and b >= 0 for b in hist),
             f"lock {site}: wait_hist must be non-negative integers")
        if isinstance(hist, list) and isinstance(s.get("contended"), int):
            need(abs(sum(hist) - s["contended"]) <= skew,
                 f"lock {site}: wait_hist sums to {sum(hist)}, "
                 f"contended is {s['contended']}")
    for e in errors:
        print(f"profile_report: CHECK FAILED: {e}", file=sys.stderr)
    return len(errors)


def collapse(doc: dict) -> list[str]:
    """Collapsed-stack lines for flamegraph.pl / speedscope."""
    lines = []
    for t in doc.get("threads", []):
        for p in t.get("paths", []):
            if p.get("self_ns", 0) == 0:
                continue
            frames = [t.get("name", "?")] + list(p.get("stack", []))
            lines.append(f"{';'.join(frames)} {p['self_ns']}")
    return lines


def fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"


def report(doc: dict) -> None:
    enabled = doc.get("enabled", False)
    print(f"gravel profile  (enabled={str(enabled).lower()}, "
          f"lock_profiling={str(doc.get('lock_profiling', False)).lower()})")
    threads = doc.get("threads", [])
    print(f"\nTHREADS ({len(threads)})")
    print(f"  {'name':<14} {'duty':>6} {'busy':>10} {'idle':>10} "
          f"{'dropped':>8}")
    for t in sorted(threads, key=lambda t: -t.get("busy_ns", 0)):
        print(f"  {t.get('name', '?'):<14} {t.get('duty', 0) * 100:>5.1f}% "
              f"{fmt_ns(t.get('busy_ns', 0)):>10} "
              f"{fmt_ns(t.get('idle_ns', 0)):>10} "
              f"{t.get('dropped', 0):>8}")

    rows = []
    for t in threads:
        for p in t.get("paths", []):
            rows.append((t.get("name", "?"), ";".join(p.get("stack", [])),
                         p.get("count", 0), p.get("self_ns", 0)))
    rows.sort(key=lambda r: -r[3])
    print(f"\nTOP PATHS by self time ({len(rows)} total)")
    print(f"  {'thread':<14} {'path':<40} {'count':>10} {'self':>10}")
    for name, path, count, self_ns in rows[:20]:
        print(f"  {name:<14} {path:<40} {count:>10} {fmt_ns(self_ns):>10}")

    locks = doc.get("locks", [])
    print(f"\nLOCKS ({len(locks)} named sites)")
    print(f"  {'site':<36} {'acquired':>10} {'contended':>10} "
          f"{'wait p50':>10} {'wait p99':>10} {'wait total':>11}")
    for s in sorted(locks, key=lambda s: -s.get("wait_ns_total", 0)):
        print(f"  {s.get('site', '?'):<36} {s.get('acquisitions', 0):>10} "
              f"{s.get('contended', 0):>10} "
              f"{fmt_ns(s.get('wait_p50_ns', 0)):>10} "
              f"{fmt_ns(s.get('wait_p99_ns', 0)):>10} "
              f"{fmt_ns(s.get('wait_ns_total', 0)):>11}")
    if not enabled:
        print("\n(profiling was disabled; enable with GRAVEL_PROFILE=1)")


def main() -> int:
    ap = argparse.ArgumentParser(
        description="Report over a gravel_profile.json document")
    ap.add_argument("profile", nargs="?", default="gravel_profile.json",
                    type=Path, help="profile document (default: ./%(default)s)")
    mode = ap.add_mutually_exclusive_group()
    mode.add_argument("--collapse", action="store_true",
                      help="emit collapsed stacks for flamegraph.pl")
    mode.add_argument("--check", action="store_true",
                      help="validate the schema; exit 1 on violation")
    args = ap.parse_args()

    doc = load(args.profile)
    if args.check:
        n = check(doc)
        if n:
            return 1
        threads = doc.get("threads", [])
        paths = sum(len(t.get("paths", [])) for t in threads)
        print(f"profile_report: OK — {len(threads)} thread(s), "
              f"{paths} path(s), {len(doc.get('locks', []))} lock site(s)")
        return 0
    if args.collapse:
        lines = collapse(doc)
        for line in lines:
            print(line)
        if not lines:
            print("profile_report: no samples to collapse "
                  "(was GRAVEL_PROFILE=1 set?)", file=sys.stderr)
            return 1
        return 0
    report(doc)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # |head closing stdout is not an error
        sys.exit(0)
