#!/usr/bin/env python3
"""Thread-safety-analysis build gate (DESIGN.md §13).

Compiles every header and TU under src/ with clang's
``-Wthread-safety -Werror``, proving the GRAVEL_* capability annotations
type-check: every GRAVEL_GUARDED_BY field is only touched under its mutex,
every GRAVEL_REQUIRES helper is only called with the lock held, and no
suppression exists outside src/verify/.

clang is a CI dependency, not a container guarantee — when no usable
clang++ is on PATH this exits 77, which the ctest registration maps to
SKIPPED (SKIP_RETURN_CODE), so local GCC-only trees stay green while the
static-analysis CI job still enforces the gate.

Passes
------
1. Every ``src/**/*.hpp`` compiled standalone (``-x c++ -fsyntax-only``):
   headers are self-contained by repo convention, so this covers annotated
   code that no .cpp in a minimal build would instantiate.
2. Every ``src/**/*.cpp`` the same way (out-of-line annotated definitions).
3. ``src/verify/shim.hpp`` and the queue/net headers again under
   ``-DGRAVEL_VERIFY=1`` — the instrumented-atomics mode redefines
   gravel::mutex and must satisfy the same analysis.

Usage:
    tsa_build_check.py <repo-root> [--clang <path>] [--keep-going]

Exit status: 0 clean, 1 diagnostics, 2 usage error, 77 clang unavailable.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

BASE_FLAGS = [
    "-std=c++20",
    "-fsyntax-only",
    "-Wthread-safety",
    "-Wthread-safety-beta",
    "-Werror=thread-safety-analysis",
    "-Werror=thread-safety-attributes",
    "-Werror=thread-safety-precise",
]

VERIFY_MODE_PREFIXES = ("verify/", "queue/", "net/", "common/")


def find_clang(explicit: str | None) -> str | None:
    candidates = [explicit] if explicit else []
    candidates += ["clang++", "clang++-18", "clang++-17", "clang++-16",
                   "clang++-15", "clang++-14"]
    for c in candidates:
        if not c:
            continue
        path = shutil.which(c)
        if not path:
            continue
        probe = subprocess.run(
            [path, "-x", "c++", "-std=c++20", "-fsyntax-only",
             "-Wthread-safety", "-"],
            input="int main() { return 0; }\n", text=True,
            capture_output=True)
        if probe.returncode == 0:
            return path
    return None


def compile_one(clang: str, src_dir: Path, path: Path,
                extra: list[str]) -> tuple[bool, str]:
    cmd = [clang, *BASE_FLAGS, f"-I{src_dir}", *extra,
           "-x", "c++", str(path)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode == 0, proc.stderr


def main(argv: list[str]) -> int:
    args = list(argv[1:])
    clang_arg = None
    keep_going = False
    if "--keep-going" in args:
        keep_going = True
        args.remove("--keep-going")
    if "--clang" in args:
        i = args.index("--clang")
        try:
            clang_arg = args[i + 1]
        except IndexError:
            print(__doc__, file=sys.stderr)
            return 2
        del args[i:i + 2]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2

    root = Path(args[0]).resolve()
    src_dir = root / "src"
    if not src_dir.is_dir():
        print(f"error: {src_dir} is not a directory", file=sys.stderr)
        return 2

    clang = find_clang(clang_arg)
    if clang is None:
        print("tsa_build_check: no usable clang++ on PATH; "
              "skipping (exit 77 -> ctest SKIPPED)")
        return 77

    units: list[tuple[Path, list[str], str]] = []
    for path in sorted(src_dir.rglob("*")):
        if path.suffix not in (".hpp", ".cpp"):
            continue
        rel = path.relative_to(src_dir).as_posix()
        units.append((path, [], rel))
        if path.suffix == ".hpp" and rel.startswith(VERIFY_MODE_PREFIXES):
            units.append((path, ["-DGRAVEL_VERIFY=1"], f"{rel} [verify]"))

    failures = 0
    for path, extra, label in units:
        ok, stderr = compile_one(clang, src_dir, path, extra)
        if ok:
            continue
        failures += 1
        print(f"tsa_build_check FAIL: {label}")
        sys.stdout.write(stderr)
        if not keep_going:
            break

    if failures:
        print(f"\ntsa_build_check: {failures} unit(s) failed -Wthread-safety "
              f"({clang})")
        return 1
    print(f"tsa_build_check OK: {len(units)} units clean under "
          f"-Wthread-safety -Werror ({clang})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
