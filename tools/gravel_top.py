#!/usr/bin/env python3
"""gravel-top: live console over a running cluster's /status endpoint.

Polls ``http://HOST:PORT/status`` (the status server enabled by
``GRAVEL_STATUS_PORT``, see src/obs/status_server.hpp) and renders a
refreshing per-node / per-link table: membership state and incarnation,
pipeline progress with rate columns computed from successive polls, circuit
breaker state, dead-letter depths, latency percentiles, open watchdog
diagnoses and — when the run was started with GRAVEL_PROFILE=1 — a
per-thread duty-cycle panel (busy vs. idle attribution from the continuous
profiler). Throughput columns also show the server-side collector windows
(``timeseries.recent``), which keep their cadence even when polling is slow.

Usage:
    gravel_top.py [host:port]          # default 127.0.0.1:9464
    gravel_top.py --interval 0.5       # poll cadence in seconds
    gravel_top.py --plain              # no curses, ANSI clear+redraw
    gravel_top.py --once               # one snapshot to stdout (CI-friendly)

Quit with q (curses) or Ctrl-C. Stdlib only.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def fetch_status(url: str, timeout: float = 2.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def fmt_rate(v: float) -> str:
    if v >= 1e6:
        return f"{v / 1e6:7.2f}M"
    if v >= 1e3:
        return f"{v / 1e3:7.2f}k"
    return f"{v:7.1f} "


def fmt_ns(ns: float) -> str:
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"


class Rates:
    """Per-node rates from successive polls (resolved msgs/s etc.)."""

    # Two successive polls can land within the clock's resolution (coarse
    # monotonic clocks, or a fast --once loop), making dt zero — or, on a
    # clock that steps, negative. Dividing by it would blow up or produce
    # nonsense spikes, so clamp to a floor and carry the previous rates for
    # the degenerate poll instead of recomputing from a ~0 window.
    MIN_DT = 1e-3  # seconds; below this a delta-based rate is meaningless

    def __init__(self) -> None:
        self.prev: dict | None = None
        self.prev_t = 0.0
        self.last_rates: dict[int, float] = {}

    def update(self, status: dict) -> dict[int, float]:
        now = time.monotonic()
        if self.prev is not None:
            dt = now - self.prev_t
            if dt <= self.MIN_DT:
                # Degenerate window: keep showing the last good rates and do
                # NOT advance prev/prev_t, so the next poll accumulates a
                # usable dt instead of chaining tiny windows.
                return dict(self.last_rates)
            rates: dict[int, float] = {}
            before = {m["node"]: m for m in self.prev.get("membership", [])}
            for m in status.get("membership", []):
                b = before.get(m["node"])
                if b is None:
                    continue
                rates[m["node"]] = max(
                    0.0, (m.get("resolved", 0) - b.get("resolved", 0)) / dt)
            self.last_rates = rates
        self.prev = status
        self.prev_t = now
        return dict(self.last_rates)


def render(status: dict, rates: dict[int, float], url: str) -> list[str]:
    lines: list[str] = []
    ts = status.get("timeseries", {})
    recent = ts.get("recent", [])
    last = recent[-1] if recent else {}
    lines.append(
        f"gravel-top — {url}  nodes={status.get('nodes', '?')} "
        f"policy={status.get('policy', '?')}  "
        f"windows={ts.get('windows', 0)}@{ts.get('period_ms', 0)}ms")
    lines.append(
        f"cluster: {fmt_rate(last.get('msgs_per_s', 0.0)).strip()} msgs/s  "
        f"{fmt_rate(last.get('bytes_per_s', 0.0)).strip()} B/s  "
        f"retx/s {last.get('retransmits_per_s', 0.0):.1f}  "
        f"dlq/s {last.get('dead_lettered_per_s', 0.0):.1f}")

    lat = status.get("latency", {})
    if lat.get("e2e_p50_ns") is not None:
        bn = lat.get("bottleneck")
        lines.append(
            f"latency: e2e p50 {fmt_ns(lat['e2e_p50_ns'])} "
            f"p99 {fmt_ns(lat.get('e2e_p99_ns', 0.0))}"
            + (f"  bottleneck {bn}" if bn else ""))

    lines.append("")
    lines.append(f"{'node':>4} {'state':<10} {'epoch':>5} {'reserved':>12} "
                 f"{'routed':>12} {'resolved':>12} {'resolved/s':>10}")
    for m in status.get("membership", []):
        node = m.get("node", 0)
        lines.append(
            f"{node:>4} {m.get('state', '?'):<10} {m.get('epoch', 0):>5} "
            f"{m.get('slots_reserved', 0):>12} {m.get('slots_routed', 0):>12} "
            f"{m.get('resolved', 0):>12} {fmt_rate(rates.get(node, 0.0)):>10}")

    links = status.get("links", [])
    if links:
        lines.append("")
        lines.append(f"{'link':>10} {'breaker':<10} {'era':>4} {'unacked':>9} "
                     f"{'retries':>8} {'stalled':>10}")
        for l in links:
            lines.append(
                f"{l.get('src', '?'):>4}->{l.get('dst', '?'):<4} "
                f"{l.get('breaker', '?'):<10} {l.get('era', 0):>4} "
                f"{l.get('unacked', 0):>9} {l.get('retries', 0):>8} "
                f"{l.get('stalled_ms', 0.0):>8.1f}ms")

    # Per-thread duty cycles from the profiler (GRAVEL_PROFILE=1): which
    # runtime threads are actually working vs. spinning in backoff. The
    # block is present-but-empty when profiling is off.
    prof = status.get("profile", {})
    threads = prof.get("threads", [])
    if prof.get("enabled") and threads:
        lines.append("")
        lines.append(f"{'thread':<14} {'duty':>6} {'busy':>10} {'idle':>10} "
                     f"{'dropped':>8}")
        for t in sorted(threads, key=lambda t: -t.get("busy_ns", 0))[:16]:
            lines.append(
                f"{t.get('name', '?'):<14} {t.get('duty', 0.0) * 100:>5.1f}% "
                f"{fmt_ns(t.get('busy_ns', 0)):>10} "
                f"{fmt_ns(t.get('idle_ns', 0)):>10} "
                f"{t.get('dropped', 0):>8}")

    dlq = status.get("dead_letter", {})
    if dlq.get("dead_lettered", 0) or dlq.get("stored", 0) or \
            dlq.get("rejected", 0):
        lines.append("")
        lines.append(
            f"dead-letter: stored {dlq.get('stored', 0)} "
            f"dead_lettered {dlq.get('dead_lettered', 0)} "
            f"redelivered {dlq.get('redelivered', 0)} "
            f"rejected {dlq.get('rejected', 0)} "
            f"evicted {dlq.get('evicted', 0)}")

    diags = [d for d in status.get("watchdog", {}).get("diagnoses", [])
             if d.get("open")]
    if diags:
        lines.append("")
        lines.append("watchdog (open):")
        for d in diags[:8]:
            lines.append(
                f"  [{d.get('kind', '?')}] node {d.get('node', '?')} "
                f"dest {d.get('dest', '?')} depth {d.get('depth', 0)} "
                f"for {d.get('duration_ms', 0.0):.0f}ms")
    return lines


def run_plain(url: str, interval: float, once: bool) -> int:
    rates = Rates()
    while True:
        try:
            status = fetch_status(url)
        except (urllib.error.URLError, OSError, json.JSONDecodeError) as e:
            print(f"gravel-top: cannot poll {url}: {e}", file=sys.stderr)
            if once:
                return 1
            time.sleep(interval)
            continue
        lines = render(status, rates.update(status), url)
        if once:
            print("\n".join(lines))
            return 0
        sys.stdout.write("\x1b[2J\x1b[H" + "\n".join(lines) + "\n")
        sys.stdout.flush()
        time.sleep(interval)


def run_curses(url: str, interval: float) -> int:
    import curses

    def loop(scr) -> int:
        curses.curs_set(0)
        scr.nodelay(True)
        rates = Rates()
        error: str | None = None
        while True:
            try:
                status = fetch_status(url)
                lines = render(status, rates.update(status), url)
                error = None
            except (urllib.error.URLError, OSError,
                    json.JSONDecodeError) as e:
                error = f"gravel-top: cannot poll {url}: {e}"
                lines = [error, "", "(q to quit)"]
            scr.erase()
            maxy, maxx = scr.getmaxyx()
            for y, line in enumerate(lines[:maxy - 1]):
                try:
                    scr.addnstr(y, 0, line, maxx - 1)
                except curses.error:
                    pass
            scr.refresh()
            deadline = time.monotonic() + interval
            while time.monotonic() < deadline:
                ch = scr.getch()
                if ch in (ord("q"), ord("Q")):
                    return 0
                time.sleep(0.05)

    return curses.wrapper(loop)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("endpoint", nargs="?", default="127.0.0.1:9464",
                        help="host:port of the status server "
                             "(default: 127.0.0.1:9464)")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="poll cadence, seconds (default: 1.0)")
    parser.add_argument("--plain", action="store_true",
                        help="ANSI clear+redraw instead of curses")
    parser.add_argument("--once", action="store_true",
                        help="print one snapshot and exit")
    args = parser.parse_args(argv[1:])

    endpoint = args.endpoint
    if not endpoint.startswith("http"):
        endpoint = f"http://{endpoint}"
    url = endpoint.rstrip("/") + "/status"

    try:
        if args.once or args.plain:
            return run_plain(url, args.interval, args.once)
        try:
            import curses  # noqa: F401
        except ImportError:
            return run_plain(url, args.interval, once=False)
        return run_curses(url, args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
